// Package baselines implements the six GPU memory-swapping systems the paper
// compares against (§6): IBM LMS (and the LMS-mod variant), vDNN, AutoTM,
// SwapAdvisor, Capuchin, and Sentinel. All of them manage memory at tensor
// (or layer) granularity on pure, non-UM device memory — the contrast to
// DeepUM's UM-block granularity is exactly the point of §6.4: "previous
// approaches manage data at the DNN layer or tensor level ... The
// performance difference comes from the more fine-grained data movement of
// DeepUM".
//
// One tensor-level executor provides the machinery (a bounded device heap
// behind the PyTorch-style caching allocator, whole-tensor swap transfers on
// the duplex link, reactive eviction under pressure); each baseline is a
// Planner producing a swap/prefetch/recompute schedule for it.
package baselines

import (
	"fmt"
	"sort"

	"deepum/internal/sim"
	"deepum/internal/torchalloc"
	"deepum/internal/um"
	"deepum/internal/workload"
)

// Plan is a baseline's memory schedule over one training iteration. Kernel
// indices count StepLaunch steps of the iteration, in order.
type Plan struct {
	// PrefetchAt[k] lists tensors whose swap-in starts when kernel k is
	// issued (overlapping with earlier kernels' compute).
	PrefetchAt map[int][]workload.TensorID
	// ReleaseAfter[k] lists tensors to swap out after kernel k completes.
	ReleaseAfter map[int][]workload.TensorID
	// Recompute marks tensors that are dropped instead of swapped out and
	// recomputed (producer cost) instead of transferred on reuse (Capuchin).
	Recompute map[workload.TensorID]bool
	// RecomputeCost is the recompute time charged on reuse of a Recompute
	// tensor.
	RecomputeCost map[workload.TensorID]sim.Duration
	// Drop marks tensors whose content is dead when released: no D2H.
	Drop map[workload.TensorID]bool
	// ReactiveLookahead makes the executor prefetch the operands of the next
	// L kernels on every launch (LMS's graph-rewritten swap-ins).
	ReactiveLookahead int
	// FlushEvery triggers an allocator cache flush every N kernels — the
	// LMS-mod modification that trades speed for fewer fragmentation OOMs.
	FlushEvery int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{
		PrefetchAt:    map[int][]workload.TensorID{},
		ReleaseAfter:  map[int][]workload.TensorID{},
		Recompute:     map[workload.TensorID]bool{},
		RecomputeCost: map[workload.TensorID]sim.Duration{},
		Drop:          map[workload.TensorID]bool{},
	}
}

// Planner builds a Plan for a program — the offline (or profiled) scheduling
// phase of each baseline.
type Planner interface {
	Name() string
	Plan(p *workload.Program, params sim.Params) (*Plan, error)
}

// ErrOOM is returned when the device heap cannot hold a kernel's working set
// even after swapping out everything swappable — the failure mode behind
// the missing entries of Figure 9(b) and the batch-size limits of Tables 3
// and 7.
var ErrOOM = fmt.Errorf("baselines: device out of memory")

// deviceHeap adapts the bounded range allocator to the caching allocator's
// backend interface.
type deviceHeap struct{ r *um.RangeAllocator }

func (d deviceHeap) Malloc(n int64) (um.Addr, error) {
	a := d.r.Alloc(n)
	if a < 0 {
		return 0, ErrOOM
	}
	return a, nil
}

func (d deviceHeap) Free(base um.Addr, n int64) { d.r.Free(base, n) }

// Result aggregates a baseline run's measurements.
type Result struct {
	Name       string
	Iterations int
	TotalTime  sim.Duration
	IterTimes  []sim.Duration
	GPUBusy    sim.Duration
	LinkBusy   sim.Duration

	SwapIns, SwapOuts, Recomputes int64
	TrafficH2D, TrafficD2H        int64
	EnergyJoules                  float64
}

// IterTime returns the mean measured iteration time.
func (r *Result) IterTime() sim.Duration {
	if r.Iterations == 0 {
		return 0
	}
	return r.TotalTime / sim.Duration(r.Iterations)
}

// Config parameterizes a baseline run.
type Config struct {
	Params     sim.Params
	Program    *workload.Program
	Planner    Planner
	Iterations int
	Warmup     int
}

// swapOverhead is the fixed framework cost per swap operation: the
// allocator call, stream synchronization and cudaMemcpyAsync launch all run
// on the framework's host thread, which serializes swap scheduling. This
// host-thread serialization is what separates tensor-level swapping systems
// from a driver-level approach (§6.4) once transfers themselves overlap.
const swapOverhead = 400 * 1000 * sim.Duration(1) // 400us per swap operation

type tensorState struct {
	onDevice  bool
	ready     sim.Time // when an in-flight swap-in lands
	hostValid bool     // host holds current content
	dirty     bool     // device content newer than host copy
	lastUse   int      // kernel index of most recent use
	block     *torchalloc.PTBlock
}

type texec struct {
	cfg    Config
	plan   *Plan
	heap   *um.RangeAllocator
	alloc  *torchalloc.Allocator
	link   *sim.Duplex
	linkTL *sim.Timeline

	state   []tensorState
	kernels []*workload.Kernel // launch steps in order
	inputs  []workload.TensorID

	now sim.Time
	// hostFree is when the framework host thread can schedule the next swap
	// operation; swaps serialize on it.
	hostFree  sim.Time
	gpuBusy   sim.Duration
	res       Result
	kernelIdx int
	needed    map[workload.TensorID]bool // operands of the running kernel
}

// Run executes the program under the planner's schedule and returns its
// measurements, or ErrOOM-wrapped failure when the device heap cannot
// sustain the batch size.
func Run(cfg Config) (*Result, error) {
	if cfg.Program == nil || cfg.Planner == nil {
		return nil, fmt.Errorf("baselines: nil program or planner")
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 1
	}
	plan, err := cfg.Planner.Plan(cfg.Program, cfg.Params)
	if err != nil {
		return nil, err
	}
	linkTL := &sim.Timeline{}
	e := &texec{
		cfg:    cfg,
		plan:   plan,
		heap:   um.NewBoundedRangeAllocator(cfg.Params.GPUMemory),
		link:   sim.NewDuplex(cfg.Params, linkTL),
		linkTL: linkTL,
		state:  make([]tensorState, len(cfg.Program.Tensors)),
		needed: map[workload.TensorID]bool{},
	}
	e.alloc = torchalloc.New(deviceHeap{e.heap})
	// Stock LMS never releases the cached pool (no flush schedule): segment
	// allocation fails outright on fragmentation. Planners with FlushEvery
	// (LMS-mod) or any flush discipline get the PyTorch retry.
	if plan.FlushEvery == 0 {
		e.alloc.NoRetryAfterFlush = true
	}
	for _, s := range cfg.Program.Iteration {
		if s.Kind == workload.StepLaunch {
			e.kernels = append(e.kernels, s.Kernel)
		}
	}
	for _, t := range cfg.Program.Tensors {
		if t.Kind == workload.Input && t.Persistent {
			e.inputs = append(e.inputs, t.ID)
		}
		if t.Persistent {
			e.state[t.ID].hostValid = true // initialized weights live on host
		}
	}
	// Host-memory wall: the CPU must hold everything not on the device.
	var footprint int64
	for _, t := range cfg.Program.Tensors {
		if t.Persistent {
			footprint += t.Bytes
		}
	}
	footprint += cfg.Program.FootprintBytes()
	if cfg.Params.HostMemory > 0 && footprint > cfg.Params.HostMemory {
		return nil, fmt.Errorf("baselines: host memory exhausted (footprint %d)", footprint)
	}

	total := cfg.Warmup + cfg.Iterations
	var measureStart sim.Time
	var busyAtStart sim.Duration
	for iter := 0; iter < total; iter++ {
		if iter == cfg.Warmup {
			measureStart = e.now
			busyAtStart = e.gpuBusy
		}
		iterStart := e.now
		if err := e.iteration(); err != nil {
			return nil, err
		}
		if iter >= cfg.Warmup {
			e.res.IterTimes = append(e.res.IterTimes, e.now.Sub(iterStart))
		}
	}
	e.res.Name = cfg.Planner.Name()
	e.res.Iterations = cfg.Iterations
	e.res.TotalTime = e.now.Sub(measureStart)
	e.res.GPUBusy = e.gpuBusy - busyAtStart
	e.res.LinkBusy = linkTL.Busy()
	e.res.TrafficH2D, e.res.TrafficD2H = e.link.Traffic()
	p := cfg.Params
	e.res.EnergyJoules = (p.PowerSystemBase+p.PowerGPUIdle)*e.res.TotalTime.Seconds() +
		p.PowerGPUBusy*e.res.GPUBusy.Seconds() +
		p.PowerLinkActive*e.res.LinkBusy.Seconds()
	return &e.res, nil
}

func (e *texec) iteration() error {
	// Host writes a fresh minibatch: input tensors must stream in again.
	for _, id := range e.inputs {
		st := &e.state[id]
		if st.onDevice {
			e.releaseTensor(id, true)
		}
		st.hostValid = true
	}
	e.kernelIdx = 0
	for _, s := range e.cfg.Program.Iteration {
		switch s.Kind {
		case workload.StepAlloc, workload.StepFree:
			// Tensor lifetimes are handled through swap state; device blocks
			// are claimed on first use and released per plan or pressure.
			if s.Kind == workload.StepFree {
				st := &e.state[s.Tensor]
				if st.onDevice {
					e.releaseTensor(s.Tensor, true) // content dead: no writeback
				}
				st.hostValid = false
			}
		case workload.StepLaunch:
			if err := e.kernel(s.Kernel); err != nil {
				return err
			}
			e.kernelIdx++
		}
	}
	// Stock LMS releases cached segments only at iteration boundaries (the
	// framework's natural cleanup point); fragmentation that builds up
	// *within* one iteration is what OOMs it at batch sizes LMS-mod's
	// periodic flush still survives.
	if e.alloc.NoRetryAfterFlush {
		e.alloc.EmptyCache()
	}
	return nil
}

func (e *texec) kernel(k *workload.Kernel) error {
	ki := e.kernelIdx
	// Mark operands needed so pressure eviction never picks them.
	for id := range e.needed {
		delete(e.needed, id)
	}
	for _, a := range k.Accesses {
		e.needed[a.Tensor] = true
	}
	// Planned prefetches for this kernel index.
	for _, id := range e.plan.PrefetchAt[ki] {
		_ = e.swapIn(id, true) // best effort; on-demand path will retry
	}
	// Reactive lookahead (LMS): prefetch the next L kernels' operands.
	for l := 1; l <= e.plan.ReactiveLookahead && ki+l < len(e.kernels); l++ {
		for _, a := range e.kernels[ki+l].Accesses {
			_ = e.swapIn(a.Tensor, true)
		}
	}
	// On-demand: every operand must be on the device before the kernel runs.
	var bytesTouched int64
	for _, a := range k.Accesses {
		st := &e.state[a.Tensor]
		if !st.onDevice {
			if err := e.swapIn(a.Tensor, false); err != nil {
				return err
			}
		}
		st = &e.state[a.Tensor]
		if st.ready > e.now {
			e.now = st.ready
		}
		if a.Write {
			st.dirty = true
		}
		st.lastUse = ki
		bytesTouched += e.cfg.Program.Tensors[a.Tensor].Bytes
	}
	dur := e.cfg.Params.KernelTime(k.FLOPs, bytesTouched+k.ExtraBytes)
	e.gpuBusy += dur
	e.now = e.now.Add(dur)

	// Planned releases.
	for _, id := range e.plan.ReleaseAfter[ki] {
		if e.state[id].onDevice {
			e.releaseTensor(id, e.plan.Drop[id] || e.plan.Recompute[id])
		}
	}
	if e.plan.FlushEvery > 0 && (ki+1)%e.plan.FlushEvery == 0 {
		e.alloc.EmptyCache()
	}
	return nil
}

// swapIn brings a tensor onto the device. Best-effort calls (prefetch) give
// up on allocation pressure instead of evicting.
func (e *texec) swapIn(id workload.TensorID, bestEffort bool) error {
	st := &e.state[id]
	if st.onDevice {
		return nil
	}
	t := e.cfg.Program.Tensors[id]
	blk, err := e.alloc.Alloc(t.Bytes)
	if err != nil {
		if bestEffort {
			return err
		}
		// Pressure: swap out LRU tensors not needed by this kernel.
		for err != nil {
			victim, ok := e.lruVictim()
			if !ok {
				return fmt.Errorf("%w: %s needs %d bytes for %q", ErrOOM, e.cfg.Planner.Name(), t.Bytes, t.Name)
			}
			e.releaseTensor(victim, false)
			blk, err = e.alloc.Alloc(t.Bytes)
		}
	}
	st.block = blk
	st.onDevice = true
	st.dirty = false
	e.res.SwapIns++
	// The host thread issues this swap; it can only handle one at a time.
	at := sim.Max(e.now, e.hostFree).Add(swapOverhead)
	e.hostFree = at
	switch {
	case st.hostValid:
		_, st.ready = e.link.Reserve(at, t.Bytes, sim.HostToDevice)
	case e.plan.Recompute[id]:
		st.ready = at.Add(e.plan.RecomputeCost[id])
		e.res.Recomputes++
	default:
		st.ready = at // first materialization: the kernel will write it
	}
	return nil
}

// releaseTensor swaps a tensor out (or drops it) and returns its device
// memory to the allocator pool.
func (e *texec) releaseTensor(id workload.TensorID, drop bool) {
	st := &e.state[id]
	if !st.onDevice {
		return
	}
	t := e.cfg.Program.Tensors[id]
	if !drop && (st.dirty || !st.hostValid) {
		at := sim.Max(e.now, e.hostFree).Add(swapOverhead)
		e.hostFree = at
		e.link.Reserve(at, t.Bytes, sim.DeviceToHost)
		st.hostValid = true
	}
	if drop && e.plan.Recompute[id] {
		st.hostValid = false
	}
	_ = e.alloc.Free(st.block.Base)
	st.block = nil
	st.onDevice = false
	st.dirty = false
	e.res.SwapOuts++
}

// lruVictim returns the least recently used on-device tensor that the
// current kernel does not need.
func (e *texec) lruVictim() (workload.TensorID, bool) {
	best := workload.TensorID(-1)
	bestUse := 1 << 60
	for id := range e.state {
		st := &e.state[id]
		if !st.onDevice || e.needed[workload.TensorID(id)] {
			continue
		}
		if st.lastUse < bestUse {
			bestUse = st.lastUse
			best = workload.TensorID(id)
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// kernelIndexOf returns, for each tensor, the kernel indices that access it,
// a helper shared by the planners.
func kernelUses(p *workload.Program) map[workload.TensorID][]int {
	uses := map[workload.TensorID][]int{}
	ki := 0
	for _, s := range p.Iteration {
		if s.Kind != workload.StepLaunch {
			continue
		}
		for _, a := range s.Kernel.Accesses {
			uses[a.Tensor] = append(uses[a.Tensor], ki)
		}
		ki++
	}
	return uses
}

// sortedTensorsBySize returns transient tensor IDs, largest first.
func sortedTensorsBySize(p *workload.Program) []workload.TensorID {
	var ids []workload.TensorID
	for _, t := range p.Tensors {
		if !t.Persistent {
			ids = append(ids, t.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return p.Tensors[ids[i]].Bytes > p.Tensors[ids[j]].Bytes })
	return ids
}
