package baselines

import (
	"deepum/internal/sim"
	"deepum/internal/workload"
)

// Capuchin approximates Capuchin (Peng et al., ASPLOS'20): it identifies
// tensor access patterns at run time and decides, per activation tensor,
// between eviction+prefetch and recomputation by comparing the swap cost
// (two PCIe transfers) against the recompute cost (the producer kernel's
// time), scheduling whichever is cheaper.
type Capuchin struct{}

// Name returns "Capuchin".
func (Capuchin) Name() string { return "Capuchin" }

// Plan releases every multi-use activation after its forward use and
// either prefetches it ahead of the backward consumer or drops it for
// recomputation, per the swap-versus-recompute cost model.
func (Capuchin) Plan(p *workload.Program, params sim.Params) (*Plan, error) {
	plan := NewPlan()
	uses := kernelUses(p)
	// Producer kernel per tensor: the kernel with the first write access.
	producerCost := map[workload.TensorID]sim.Duration{}
	ki := 0
	for _, s := range p.Iteration {
		if s.Kind != workload.StepLaunch {
			continue
		}
		var bytes int64
		for _, a := range s.Kernel.Accesses {
			bytes += p.Tensors[a.Tensor].Bytes
		}
		cost := params.KernelTime(s.Kernel.FLOPs, bytes)
		for _, a := range s.Kernel.Accesses {
			if a.Write {
				if _, seen := producerCost[a.Tensor]; !seen {
					producerCost[a.Tensor] = cost
				}
			}
		}
		ki++
	}
	_ = ki
	for _, t := range p.Tensors {
		if t.Kind != workload.Activation {
			continue
		}
		ks := uses[t.ID]
		if len(ks) < 2 {
			continue
		}
		swapCost := 2 * params.TransferTime(t.Bytes)
		recompute := producerCost[t.ID]
		plan.ReleaseAfter[ks[0]] = append(plan.ReleaseAfter[ks[0]], t.ID)
		if recompute > 0 && recompute < swapCost {
			// Cheaper to recompute than to round-trip over PCIe.
			plan.Recompute[t.ID] = true
			plan.RecomputeCost[t.ID] = recompute
		} else {
			back := ks[len(ks)-1]
			lead := back - 1
			if lead <= ks[0] {
				lead = ks[0] + 1
			}
			plan.PrefetchAt[lead] = append(plan.PrefetchAt[lead], t.ID)
		}
	}
	for _, s := range p.Iteration {
		if s.Kind == workload.StepFree {
			plan.Drop[s.Tensor] = true
		}
	}
	return plan, nil
}
