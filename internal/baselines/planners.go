package baselines

import (
	"fmt"
	"sort"
	"strings"

	"deepum/internal/sim"
	"deepum/internal/workload"
)

// VDNN implements the vDNN policy (Rhu et al., MICRO'16): offload each
// convolutional layer's activations right after their forward use and
// prefetch them at the matching backward layer. vDNN "supports only
// convolutional neural networks" (§7) — planning a transformer or
// recommendation model fails, reproducing the "not work" entry of Table 7.
type VDNN struct{}

// Name returns "vDNN".
func (VDNN) Name() string { return "vDNN" }

// ErrUnsupportedModel marks models a baseline cannot schedule.
var ErrUnsupportedModel = fmt.Errorf("baselines: model not supported")

// Plan offloads every activation after its last forward use and prefetches
// it shortly before its backward consumer.
func (VDNN) Plan(p *workload.Program, params sim.Params) (*Plan, error) {
	if !isConvNet(p) {
		return nil, fmt.Errorf("%w: vDNN handles only CNNs, got %q", ErrUnsupportedModel, p.Name)
	}
	plan := NewPlan()
	uses := kernelUses(p)
	for _, t := range p.Tensors {
		if t.Kind != workload.Activation {
			continue
		}
		ks := uses[t.ID]
		if len(ks) < 2 {
			continue
		}
		// Offload after the first (forward) use; vDNN synchronizes the
		// offload with the layer, so the activation is host-valid afterwards.
		plan.ReleaseAfter[ks[0]] = append(plan.ReleaseAfter[ks[0]], t.ID)
		// Prefetch one layer (kernel) ahead of the backward consumer.
		back := ks[len(ks)-1]
		lead := back - 1
		if lead < ks[0]+1 {
			lead = ks[0] + 1
		}
		plan.PrefetchAt[lead] = append(plan.PrefetchAt[lead], t.ID)
	}
	return plan, nil
}

// isConvNet detects convolutional programs from their kernel names.
func isConvNet(p *workload.Program) bool {
	conv := false
	for _, s := range p.Iteration {
		if s.Kind != workload.StepLaunch {
			continue
		}
		n := s.Kernel.Name
		if strings.Contains(n, "conv") {
			conv = true
		}
		if strings.Contains(n, "attn") || strings.Contains(n, "emb_lookup") {
			return false
		}
	}
	return conv
}

// AutoTM approximates the AutoTM scheduler (Hildebrand et al., ASPLOS'20).
// The original formulates tensor placement and movement as an integer linear
// program; this reproduction substitutes a cost-greedy assignment with the
// same objective — keep the highest traffic-per-byte tensors resident, swap
// the rest with just-in-time prefetch — documented in DESIGN.md §6.
type AutoTM struct{}

// Name returns "AutoTM".
func (AutoTM) Name() string { return "AutoTM" }

// Plan assigns device residency by traffic density until the device budget
// is filled; everything else is offloaded after each use and prefetched one
// kernel ahead of the next use.
func (AutoTM) Plan(p *workload.Program, params sim.Params) (*Plan, error) {
	plan := NewPlan()
	uses := kernelUses(p)
	// Budget: keep a working margin for the caching allocator.
	budget := params.GPUMemory * 8 / 10
	type cand struct {
		id      workload.TensorID
		density float64
	}
	var cands []cand
	for _, t := range p.Tensors {
		ks := uses[t.ID]
		if len(ks) == 0 || t.Bytes == 0 {
			continue
		}
		cands = append(cands, cand{t.ID, float64(len(ks)) / float64(t.Bytes)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].density > cands[j].density })
	resident := map[workload.TensorID]bool{}
	var used int64
	for _, c := range cands {
		if used+p.Tensors[c.id].Bytes > budget {
			continue
		}
		resident[c.id] = true
		used += p.Tensors[c.id].Bytes
	}
	for _, c := range cands {
		if resident[c.id] {
			continue
		}
		ks := uses[c.id]
		for i, k := range ks {
			plan.ReleaseAfter[k] = append(plan.ReleaseAfter[k], c.id)
			if i+1 < len(ks) {
				lead := ks[i+1] - 1
				if lead <= k {
					lead = k + 1
				}
				plan.PrefetchAt[lead] = append(plan.PrefetchAt[lead], c.id)
			}
		}
	}
	for _, s := range p.Iteration {
		if s.Kind == workload.StepFree {
			plan.Drop[s.Tensor] = true
		}
	}
	return plan, nil
}

// Sentinel approximates Sentinel (Ren et al., HPCA'21): a profiling
// iteration classifies data as hot or cold at page granularity (Sentinel
// uses the CPU page-fault mechanism for this); small hot tensors are pinned
// on the device so they never share migration decisions with large cold
// ones, and large cold tensors migrate at layer granularity just in time.
// It is the strongest of the TensorFlow-based systems (§6.4).
type Sentinel struct{}

// Name returns "Sentinel".
func (Sentinel) Name() string { return "Sentinel" }

// Plan pins small and frequently used tensors (hot pages) and schedules the
// remaining large tensors with release-after-use and two-kernel prefetch
// lead, approximating Sentinel's runtime-profiled schedule.
func (Sentinel) Plan(p *workload.Program, params sim.Params) (*Plan, error) {
	plan := NewPlan()
	uses := kernelUses(p)
	// Hot = used more than twice per iteration or smaller than 2 MiB: these
	// stay resident (Sentinel keeps hot pages on fast memory).
	budget := params.GPUMemory * 85 / 100
	var used int64
	pinned := map[workload.TensorID]bool{}
	type cand struct {
		id   workload.TensorID
		heat float64
	}
	var cands []cand
	for _, t := range p.Tensors {
		ks := uses[t.ID]
		if len(ks) == 0 {
			continue
		}
		heat := float64(len(ks))
		if t.Bytes <= 2<<20 {
			heat *= 16 // page-level hot data
		}
		cands = append(cands, cand{t.ID, heat / float64(t.Bytes+1)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].heat > cands[j].heat })
	for _, c := range cands {
		if used+p.Tensors[c.id].Bytes > budget {
			continue
		}
		pinned[c.id] = true
		used += p.Tensors[c.id].Bytes
	}
	for _, c := range cands {
		if pinned[c.id] {
			continue
		}
		ks := uses[c.id]
		for i, k := range ks {
			plan.ReleaseAfter[k] = append(plan.ReleaseAfter[k], c.id)
			if i+1 < len(ks) {
				lead := ks[i+1] - 2 // two kernels of lead: profiled timing
				if lead <= k {
					lead = k + 1
				}
				plan.PrefetchAt[lead] = append(plan.PrefetchAt[lead], c.id)
			}
		}
	}
	for _, s := range p.Iteration {
		if s.Kind == workload.StepFree {
			plan.Drop[s.Tensor] = true
		}
	}
	return plan, nil
}
