package umrt

import (
	"testing"
	"testing/quick"

	"deepum/internal/correlation"
	"deepum/internal/um"
)

func TestHashLaunchDeterministic(t *testing.T) {
	a := HashLaunch("sgemm", []uint64{1, 2, 3})
	b := HashLaunch("sgemm", []uint64{1, 2, 3})
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if HashLaunch("sgemm", []uint64{1, 2, 4}) == a {
		t.Fatal("different args must hash differently")
	}
	if HashLaunch("dgemm", []uint64{1, 2, 3}) == a {
		t.Fatal("different names must hash differently")
	}
	if HashLaunch("sgemm", nil) == HashLaunch("sgemm", []uint64{0}) {
		t.Fatal("arg count must affect the hash")
	}
}

func TestExecIDTableAssign(t *testing.T) {
	tbl := NewExecIDTable()
	id0, fresh := tbl.Assign(111)
	if !fresh || id0 != 0 {
		t.Fatalf("first assign = (%d,%v)", id0, fresh)
	}
	id1, fresh := tbl.Assign(222)
	if !fresh || id1 != 1 {
		t.Fatalf("second assign = (%d,%v)", id1, fresh)
	}
	again, fresh := tbl.Assign(111)
	if fresh || again != id0 {
		t.Fatalf("repeat assign = (%d,%v)", again, fresh)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

// TestExecIDTableQuick: assignment is a function — equal hashes always get
// equal IDs, distinct hashes distinct IDs.
func TestExecIDTableQuick(t *testing.T) {
	f := func(hashes []uint64) bool {
		tbl := NewExecIDTable()
		byHash := map[uint64]correlation.ExecID{}
		for _, h := range hashes {
			id, _ := tbl.Assign(h)
			if prev, ok := byHash[h]; ok && prev != id {
				return false
			}
			byHash[h] = id
		}
		ids := map[correlation.ExecID]bool{}
		for _, id := range byHash {
			if ids[id] {
				return false
			}
			ids[id] = true
		}
		return tbl.Len() == len(byHash)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

type recordingDriver struct {
	launched  []correlation.ExecID
	completed []correlation.ExecID
}

func (d *recordingDriver) KernelLaunch(id correlation.ExecID) { d.launched = append(d.launched, id) }
func (d *recordingDriver) KernelComplete(id correlation.ExecID) {
	d.completed = append(d.completed, id)
}

func TestRuntimeLaunchCallback(t *testing.T) {
	drv := &recordingDriver{}
	rt := New(um.NewSpace(0), drv)
	id0 := rt.Launch("conv2d", []uint64{64, 3, 224})
	id1 := rt.Launch("relu", []uint64{64})
	id2 := rt.Launch("conv2d", []uint64{64, 3, 224}) // same command, same ID
	if id0 == id1 {
		t.Fatal("distinct kernels share an execution ID")
	}
	if id2 != id0 {
		t.Fatal("repeated launch got a new execution ID")
	}
	if len(drv.launched) != 3 {
		t.Fatalf("driver callbacks = %d, want 3", len(drv.launched))
	}
	rt.Complete(id0)
	if len(drv.completed) != 1 || drv.completed[0] != id0 {
		t.Fatalf("completions = %v", drv.completed)
	}
	if rt.Launches() != 3 || rt.DistinctKernels() != 2 {
		t.Fatalf("launches=%d distinct=%d", rt.Launches(), rt.DistinctKernels())
	}
}

func TestRuntimeMallocRoutesToUM(t *testing.T) {
	rt := New(um.NewSpace(0), nil)
	a, err := rt.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Space.AllocatedBytes() != 1<<20 {
		t.Fatalf("allocated = %d", rt.Space.AllocatedBytes())
	}
	rt.Free(a, 1<<20)
	if rt.Space.AllocatedBytes() != 0 {
		t.Fatalf("allocated after free = %d", rt.Space.AllocatedBytes())
	}
}

func TestRuntimeNilDriver(t *testing.T) {
	rt := New(um.NewSpace(0), nil)
	id := rt.Launch("k", nil) // must not panic
	rt.Complete(id)
}
