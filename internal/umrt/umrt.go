// Package umrt is the DeepUM runtime (§3.1): the layer that would be
// LD_PRELOADed under PyTorch on a real system. It wraps GPU memory
// allocation so every request lands in unified memory, wraps kernel launch
// commands to assign execution IDs from a hash of the kernel name and
// arguments, and delivers the execution ID of each upcoming launch to the
// driver through a callback — the stand-in for the ioctl the paper uses.
package umrt

import (
	"encoding/binary"
	"hash/fnv"

	"deepum/internal/correlation"
	"deepum/internal/um"
)

// ExecIDTable maps the hash of a kernel launch command (kernel name plus
// argument values) to its execution ID, assigning fresh IDs to unseen
// commands. Two launches of the same kernel with the same arguments — the
// common case in DNN training, where the iteration repeats the identical
// launch sequence — share an execution ID.
type ExecIDTable struct {
	ids  map[uint64]correlation.ExecID
	next correlation.ExecID
}

// NewExecIDTable returns an empty execution-ID table.
func NewExecIDTable() *ExecIDTable {
	return &ExecIDTable{ids: make(map[uint64]correlation.ExecID)}
}

// HashLaunch computes the lookup key of a kernel launch: an FNV-1a hash of
// the kernel name and its argument words. Pointer-valued arguments are
// included — tensor base addresses distinguish otherwise identical layers,
// and the PyTorch caching allocator makes them stable across iterations.
func HashLaunch(name string, args []uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [8]byte
	for _, a := range args {
		binary.LittleEndian.PutUint64(buf[:], a)
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// Assign returns the execution ID for the launch hash, creating one when the
// command has not been seen before. The second result reports whether the
// ID is new.
func (t *ExecIDTable) Assign(hash uint64) (correlation.ExecID, bool) {
	if id, ok := t.ids[hash]; ok {
		return id, false
	}
	id := t.next
	t.next++
	t.ids[hash] = id
	return id, true
}

// Len returns the number of distinct launch commands observed.
func (t *ExecIDTable) Len() int { return len(t.ids) }

// Driver is the interface the runtime talks to through its pre-launch
// callback: the DeepUM driver receives the execution ID of the kernel about
// to run (§3.1: "The callback function passes the execution ID of the
// following kernel launch command to the DeepUM driver through the Linux
// ioctl command").
type Driver interface {
	// KernelLaunch announces that the kernel with the given execution ID is
	// about to start.
	KernelLaunch(id correlation.ExecID)
	// KernelComplete announces that the announced kernel finished; the
	// prefetching thread resumes paused chaining here (§4.2).
	KernelComplete(id correlation.ExecID)
}

// Runtime wires allocation wrapping and launch interception together.
type Runtime struct {
	Space  *um.Space
	Driver Driver
	table  *ExecIDTable

	launches int64
	newIDs   int64
}

// New returns a runtime allocating from space and reporting to driver.
func New(space *um.Space, driver Driver) *Runtime {
	return &Runtime{Space: space, Driver: driver, table: NewExecIDTable()}
}

// Malloc is the wrapper for cudaMalloc and friends: every device allocation
// becomes a UM allocation, which is what enables oversubscription.
func (r *Runtime) Malloc(n int64) (um.Addr, error) { return r.Space.Malloc(n) }

// Free releases a UM allocation.
func (r *Runtime) Free(base um.Addr, n int64) { r.Space.Free(base, n) }

// Launch intercepts one kernel launch command: it assigns the execution ID
// and enqueues the pre-launch callback to the driver. It returns the ID for
// the caller to execute the kernel under.
func (r *Runtime) Launch(name string, args []uint64) correlation.ExecID {
	id, fresh := r.table.Assign(HashLaunch(name, args))
	r.launches++
	if fresh {
		r.newIDs++
	}
	if r.Driver != nil {
		r.Driver.KernelLaunch(id)
	}
	return id
}

// Complete reports kernel completion to the driver.
func (r *Runtime) Complete(id correlation.ExecID) {
	if r.Driver != nil {
		r.Driver.KernelComplete(id)
	}
}

// Launches returns the total number of intercepted kernel launches.
func (r *Runtime) Launches() int64 { return r.launches }

// DistinctKernels returns the number of distinct execution IDs assigned.
func (r *Runtime) DistinctKernels() int64 { return r.newIDs }
