// Package learned implements an online-learned prefetch policy in the
// spirit of "Deep Learning based Data Prefetching in CPU-GPU Unified
// Virtual Memory" (arXiv 2203.12672): instead of set-associative
// correlation tables it learns, per kernel, the fault sequence of the
// kernel's previous occurrence plus a majority-vote inter-fault delta, and
// predicts by replaying the remembered sequence from the faulting block
// onward — chaining into learned successor kernels up to the degree bound —
// falling back to delta extrapolation for blocks it has never seen.
//
// The learning signal is exactly the kernel-launch/fault stream the
// correlation prefetcher sees; no training phase, no external model. All
// state is bounded (maxKernels tracked kernels, maxSeq blocks per kernel)
// and the prediction is deterministic for a fixed stream.
package learned

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"deepum/internal/correlation"
	"deepum/internal/policy"
	"deepum/internal/um"
)

// Name is the registered policy name.
const Name = "learned"

func init() {
	policy.Register(Name,
		"online-learned per-kernel fault-sequence replay with delta fallback (arXiv 2203.12672 style)",
		New)
}

const (
	// maxKernels bounds how many distinct execution IDs are tracked.
	maxKernels = 8192
	// maxSeq bounds the remembered fault sequence per kernel occurrence.
	maxSeq = 1024
	// extrapolateLen bounds a delta-extrapolation burst for unseen blocks.
	extrapolateLen = 16
)

// kernelState is what the policy remembers about one execution ID.
type kernelState struct {
	// seq is the fault sequence observed during the kernel's previous
	// occurrence; rec accumulates the current occurrence and becomes seq at
	// the next launch of the same kernel.
	seq []um.BlockID
	rec []um.BlockID
	// pos indexes seq by block (first occurrence wins) for O(1) replay
	// positioning on a fault.
	pos map[um.BlockID]int
	// next is the last observed successor kernel (NoExec if none yet).
	next correlation.ExecID
	// delta is the majority-vote (Boyer-Moore) inter-fault block delta of
	// the kernel's fault stream; votes is its confidence counter.
	delta int64
	votes int64
}

// Learned is the policy instance.
type Learned struct {
	prefetch bool
	degree   int
	kernels  map[correlation.ExecID]*kernelState
	current  correlation.ExecID
	gate     policy.Gate

	// Replay plan, rebuilt on every fault: walk seq[idx:] of exec, then
	// chain into learned successors. kernelsEntered/completed implement the
	// same degree pause the correlation chain uses.
	plan struct {
		active bool
		exec   correlation.ExecID // kernel whose seq is being replayed
		idx    int
		// extrapolating: emit base + n*delta instead of a remembered seq.
		extrapolate bool
		base        um.BlockID
		delta       int64
		n           int
		// seen guards against successor cycles within one plan.
		seen map[correlation.ExecID]bool

		kernelsEntered int
		completed      int
	}
}

// New builds the learned policy; WarmPayload restores a Save snapshot.
func New(opts policy.Options) (policy.Policy, error) {
	if opts.WarmTables != nil {
		return nil, fmt.Errorf("policy %s: WarmTables carries correlation tables; this policy has none to warm", Name)
	}
	degree := opts.Degree
	if degree < 1 {
		degree = 1
	}
	l := &Learned{
		prefetch: opts.Prefetch,
		degree:   degree,
		kernels:  make(map[correlation.ExecID]*kernelState),
		current:  correlation.NoExec,
	}
	if len(opts.WarmPayload) > 0 {
		if err := l.load(opts.WarmPayload); err != nil {
			return nil, fmt.Errorf("policy %s: decoding warm state: %w", Name, err)
		}
	}
	return l, nil
}

// Name implements policy.Policy.
func (l *Learned) Name() string { return Name }

func (l *Learned) state(id correlation.ExecID) *kernelState {
	ks := l.kernels[id]
	if ks == nil {
		if len(l.kernels) >= maxKernels {
			return nil // table full: this kernel stays untracked
		}
		ks = &kernelState{next: correlation.NoExec}
		l.kernels[id] = ks
	}
	return ks
}

// KernelLaunch commits the previous occurrence's recording as the kernel's
// replayable sequence and learns the predecessor's successor edge.
func (l *Learned) KernelLaunch(id correlation.ExecID) {
	if l.current != correlation.NoExec {
		if prev := l.kernels[l.current]; prev != nil {
			prev.next = id
		}
	}
	l.current = id
	ks := l.state(id)
	if ks == nil {
		return
	}
	// The recording of the previous occurrence becomes the prediction for
	// this one; recording restarts empty.
	ks.seq, ks.rec = ks.rec, ks.seq[:0]
	if ks.pos == nil {
		ks.pos = make(map[um.BlockID]int, len(ks.seq))
	} else {
		clear(ks.pos)
	}
	for i, b := range ks.seq {
		if _, dup := ks.pos[b]; !dup {
			ks.pos[b] = i
		}
	}
}

// KernelComplete feeds the degree window, like the correlation chain.
func (l *Learned) KernelComplete(id correlation.ExecID) {
	if l.plan.active {
		l.plan.completed++
	}
}

// OnFault learns (sequence append, delta vote) and rebuilds the replay
// plan from the faulted block.
func (l *Learned) OnFault(b um.BlockID) bool {
	if l.current == correlation.NoExec {
		return false
	}
	ks := l.kernels[l.current]
	if ks == nil {
		return false
	}
	if n := len(ks.rec); n < maxSeq {
		if n > 0 {
			// Majority-vote delta over successive faults of this kernel.
			dd := int64(b) - int64(ks.rec[n-1])
			if dd == ks.delta {
				ks.votes++
			} else {
				ks.votes--
				if ks.votes <= 0 {
					ks.delta, ks.votes = dd, 1
				}
			}
		}
		ks.rec = append(ks.rec, b)
	}
	if !l.prefetch {
		return false
	}
	// Rebuild the plan: replay the remembered sequence from just past the
	// faulted block, or extrapolate by the learned delta for unseen blocks.
	p := &l.plan
	p.active = true
	p.exec = l.current
	p.extrapolate = false
	p.kernelsEntered = 1
	p.completed = 0
	if p.seen == nil {
		p.seen = make(map[correlation.ExecID]bool)
	} else {
		clear(p.seen)
	}
	p.seen[l.current] = true
	if i, ok := ks.pos[b]; ok {
		p.idx = i + 1
	} else {
		p.extrapolate = true
		p.base = b
		p.delta = ks.delta
		if p.delta == 0 {
			p.delta = 1
		}
		p.n = 1
	}
	return true
}

// Next replays the plan one block at a time, chaining into learned
// successor kernels at sequence boundaries.
func (l *Learned) Next() policy.Step {
	p := &l.plan
	if !p.active {
		return policy.Step{Out: policy.Pause}
	}
	degree := l.degree
	if l.gate != nil {
		if !l.gate.AllowPrefetchEnqueue() {
			return policy.Step{Out: policy.Pause}
		}
		if degree = l.gate.DegreeCap(degree); degree < 1 {
			return policy.Step{Out: policy.Pause}
		}
	}
	for {
		if p.kernelsEntered-p.completed > degree {
			return policy.Step{Out: policy.Pause}
		}
		if p.extrapolate {
			if p.n > extrapolateLen {
				p.active = false
				return policy.Step{Out: policy.Dead, Cause: "noexec"}
			}
			b := um.BlockID(int64(p.base) + int64(p.n)*p.delta)
			p.n++
			if b < 0 {
				continue
			}
			return policy.Step{Out: policy.Emit, Cmd: policy.Command{Block: b, Exec: p.exec}}
		}
		ks := l.kernels[p.exec]
		if ks != nil && p.idx < len(ks.seq) {
			b := ks.seq[p.idx]
			p.idx++
			return policy.Step{Out: policy.Emit, Cmd: policy.Command{Block: b, Exec: p.exec}}
		}
		// Sequence exhausted: chain into the learned successor.
		next := correlation.NoExec
		if ks != nil {
			next = ks.next
		}
		if next == correlation.NoExec || p.seen[next] {
			p.active = false
			return policy.Step{Out: policy.Dead, Cause: "noexec"}
		}
		p.seen[next] = true
		p.exec = next
		p.idx = 0
		p.kernelsEntered++
	}
}

// NoteEviction implements policy.Policy (no eviction feedback needed).
func (l *Learned) NoteEviction(b um.BlockID) {}

// Discard drops the replay plan; learned sequences survive.
func (l *Learned) Discard() { l.plan.active = false }

// SetGate implements policy.Policy.
func (l *Learned) SetGate(g policy.Gate) { l.gate = g }

// SizeBytes estimates the learned-state memory.
func (l *Learned) SizeBytes() int64 {
	var n int64
	for _, ks := range l.kernels {
		n += 40 // fixed fields
		n += int64(len(ks.seq)+len(ks.rec)) * 8
		n += int64(len(ks.pos)) * 16
	}
	return n
}

// --- checkpointing ---
//
// Payload layout (little-endian): u32 kernel count, then per kernel in
// ascending ExecID order: i32 id, i32 next, i64 delta, i64 votes,
// u32 seqLen, seqLen x i64 blocks. Mid-occurrence recordings (rec) are
// deliberately not persisted: a checkpoint is taken at a run boundary.

// Save implements policy.Policy with a deterministic encoding.
func (l *Learned) Save(w io.Writer) error {
	ids := make([]correlation.ExecID, 0, len(l.kernels))
	for id := range l.kernels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var buf bytes.Buffer
	writeU32(&buf, uint32(len(ids)))
	for _, id := range ids {
		ks := l.kernels[id]
		writeU32(&buf, uint32(int32(id)))
		writeU32(&buf, uint32(int32(ks.next)))
		writeI64(&buf, ks.delta)
		writeI64(&buf, ks.votes)
		writeU32(&buf, uint32(len(ks.seq)))
		for _, b := range ks.seq {
			writeI64(&buf, int64(b))
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// load restores a Save payload, rejecting hostile counts before allocating.
func (l *Learned) load(payload []byte) error {
	d := payload
	u32 := func() (uint32, error) {
		if len(d) < 4 {
			return 0, fmt.Errorf("truncated: need 4 bytes, have %d", len(d))
		}
		v := binary.LittleEndian.Uint32(d)
		d = d[4:]
		return v, nil
	}
	i64 := func() (int64, error) {
		if len(d) < 8 {
			return 0, fmt.Errorf("truncated: need 8 bytes, have %d", len(d))
		}
		v := int64(binary.LittleEndian.Uint64(d))
		d = d[8:]
		return v, nil
	}
	n, err := u32()
	if err != nil {
		return err
	}
	// Every kernel record is at least 24 bytes; a count outrunning the
	// stream is hostile.
	if int(n) > maxKernels || int(n)*24 > len(d) {
		return fmt.Errorf("kernel count %d exceeds limit or remaining %d bytes", n, len(d))
	}
	for i := 0; i < int(n); i++ {
		idRaw, err := u32()
		if err != nil {
			return err
		}
		nextRaw, err := u32()
		if err != nil {
			return err
		}
		delta, err := i64()
		if err != nil {
			return err
		}
		votes, err := i64()
		if err != nil {
			return err
		}
		seqLen, err := u32()
		if err != nil {
			return err
		}
		if int(seqLen) > maxSeq || int(seqLen)*8 > len(d) {
			return fmt.Errorf("sequence length %d exceeds limit or remaining %d bytes", seqLen, len(d))
		}
		ks := &kernelState{
			next:  correlation.ExecID(int32(nextRaw)),
			delta: delta,
			votes: votes,
		}
		// Restored sequences go into rec: the next launch of the kernel
		// promotes them to seq exactly as a live recording would be.
		for j := 0; j < int(seqLen); j++ {
			b, err := i64()
			if err != nil {
				return err
			}
			ks.rec = append(ks.rec, um.BlockID(b))
		}
		id := correlation.ExecID(int32(idRaw))
		if _, dup := l.kernels[id]; dup {
			return fmt.Errorf("duplicate kernel id %d", id)
		}
		l.kernels[id] = ks
	}
	if len(d) != 0 {
		return fmt.Errorf("%d trailing bytes", len(d))
	}
	return nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeI64(buf *bytes.Buffer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}
