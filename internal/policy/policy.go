// Package policy defines the pluggable prefetch-policy seam of the DeepUM
// driver. The driver (internal/core) owns mechanism — the bounded prefetch
// queue, dedup and protected-set bookkeeping, the residency probe, observer
// hooks, and health-gate plumbing — while a Policy owns *what to fetch
// next*: it watches the kernel-launch and fault streams and emits prefetch
// commands one step at a time.
//
// Policies register themselves by name (Register, usually from init) so the
// engine, the public facade, and the CLIs can select and enumerate them;
// the correlation chaser of the paper (§4.2) is the default. Each policy
// carries its own warm state and serializes it through Save so checkpoints
// written under one policy resume under the same one (the envelope format
// in internal/correlation records the policy name).
package policy

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"deepum/internal/correlation"
	"deepum/internal/um"
)

// Command pairs a UM block address with the execution ID of the kernel it
// is predicted to serve — the payload of the paper's prefetch queue.
type Command struct {
	Block um.BlockID
	Exec  correlation.ExecID
}

// Outcome classifies one Next step.
type Outcome uint8

const (
	// Pause: nothing to emit right now; the policy may resume later (a
	// chain waiting at the degree boundary, a gated ladder level, or no
	// active prediction). The driver stops filling without recording a
	// prediction death.
	Pause Outcome = iota
	// Emit: Step.Cmd carries the next prefetch command.
	Emit
	// Dead: the active prediction died (no successor kernel, too many
	// anchorless skips). The driver records the death in its stats using
	// Step.Cause and stops filling until the next fault restarts the
	// policy.
	Dead
)

// Step is one increment of a policy's prediction stream.
type Step struct {
	Cmd Command
	Out Outcome
	// Cause names a death reason when Out is Dead ("noexec", "skips");
	// empty otherwise.
	Cause string
}

// Gate is the slice of the health controller's degradation ladder a policy
// consults before creating new speculation (internal/health implements it).
// Everything here bounds prediction work only — the demand path never goes
// through the gate.
type Gate interface {
	// AllowPrefetchEnqueue reports whether new prefetch commands may be
	// queued at all (false at L3, pure demand).
	AllowPrefetchEnqueue() bool
	// SpeculativeRequeue reports whether evicted-but-still-predicted blocks
	// may be re-queued (false from L1 up: chained-correlation only).
	SpeculativeRequeue() bool
	// DegreeCap bounds the effective chaining degree (or window size) for
	// the current level.
	DegreeCap(base int) int
}

// Policy decides what the driver prefetches next. Implementations must be
// deterministic: the same launch/fault stream must produce the same command
// stream (the AccessChecksum equivalence tests depend on it). A Policy is
// driven from a single goroutine; it needs no internal locking.
type Policy interface {
	// Name returns the registered policy name ("correlation", ...).
	Name() string
	// KernelLaunch observes the execution ID of the kernel about to run.
	KernelLaunch(id correlation.ExecID)
	// KernelComplete observes a kernel finishing; a paused policy may use
	// the extra lookahead budget on the next Next call.
	KernelComplete(id correlation.ExecID)
	// OnFault observes one faulted UM block. The return value tells the
	// driver whether to restart speculation: true discards the queue's
	// outstanding commands (the GPU diverged from the prediction that
	// produced them) and refills from the policy's new prediction.
	OnFault(b um.BlockID) (restart bool)
	// Next produces the next prediction step; the driver calls it in a
	// budgeted loop and applies its own dedup, residency, and capacity
	// filters to Emit steps.
	Next() Step
	// NoteEviction observes a block leaving the device (policy-side
	// bookkeeping only; the driver handles protected-block requeue).
	NoteEviction(b um.BlockID)
	// Discard drops all speculative state (active chains, replay plans).
	// Learned tables survive: the next fault restarts prediction warm.
	Discard()
	// SetGate installs the degradation-ladder gate; nil disables gating.
	SetGate(g Gate)
	// SizeBytes estimates the policy's state memory (Table 4 accounting).
	SizeBytes() int64
	// Save serializes the policy's warm state (the payload of a checkpoint
	// envelope; the caller records the policy name alongside). The encoding
	// must be deterministic: saving twice yields identical bytes.
	Save(w io.Writer) error
}

// Options parameterize policy construction. The driver passes its own
// normalized options through; individual policies ignore what they do not
// use.
type Options struct {
	// Prefetch mirrors core.Options.Prefetch: when false the policy keeps
	// learning from the fault stream but OnFault never requests a restart
	// and Next never emits (the Figure 10 ablation).
	Prefetch bool
	// Degree is the chaining degree N (or window bound) before pausing.
	Degree int
	// TableConfig parameterizes correlation tables for policies that keep
	// them.
	TableConfig correlation.BlockTableConfig
	// WarmTables seeds the correlation policy with already-decoded tables
	// (the typed facade resume path). Policies without tables reject it.
	WarmTables *correlation.Tables
	// WarmPayload seeds the policy with its own Save output (the generic
	// checkpoint resume path). Ignored when WarmTables is set.
	WarmPayload []byte
	// Seed is available to policies that need a deterministic tiebreaker.
	Seed int64
}

// Factory builds a policy instance from options.
type Factory func(Options) (Policy, error)

// Info describes one registered policy for discovery listings.
type Info struct {
	// Name is the value for core.Options.Policy / Config.Policy / -policy.
	Name string
	// Summary is a one-line human-readable description.
	Summary string
}

// DefaultName is the policy the driver uses when none is named: the
// paper's correlation prefetcher.
const DefaultName = "correlation"

var (
	regMu     sync.RWMutex
	factories = make(map[string]Factory)
	summaries = make(map[string]string)
)

// Register installs a policy factory under name. Policies register from
// init; a duplicate name panics (a wiring bug, not a runtime condition).
func Register(name, summary string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("policy: Register with empty name or nil factory")
	}
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	factories[name] = f
	summaries[name] = summary
}

// New builds the named policy; the empty name selects DefaultName. Unknown
// names return an UnknownError so callers can reject them with a typed
// error before any driver state exists.
func New(name string, opts Options) (Policy, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, &UnknownError{Name: name}
	}
	return f(opts)
}

// Known reports whether name is a registered policy (the empty name counts:
// it resolves to DefaultName).
func Known(name string) bool {
	if name == "" {
		return true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := factories[name]
	return ok
}

// Names returns the registered policy names in ascending order.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Infos returns the registered policies, sorted by name.
func Infos() []Info {
	regMu.RLock()
	out := make([]Info, 0, len(factories))
	for name := range factories {
		out = append(out, Info{Name: name, Summary: summaries[name]})
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// UnknownError is the typed rejection for a policy name nobody registered.
type UnknownError struct{ Name string }

func (e *UnknownError) Error() string {
	return fmt.Sprintf("policy: unknown prefetch policy %q (known: %v)", e.Name, Names())
}
