package policy_test

import (
	"bytes"
	"testing"

	"deepum/internal/correlation"
	"deepum/internal/policy"
	"deepum/internal/um"

	_ "deepum/internal/policy/correlation"
	_ "deepum/internal/policy/gpuvm"
	_ "deepum/internal/policy/learned"
)

// newOpts is the construction baseline every round-trip test starts from.
func newOpts() policy.Options {
	return policy.Options{
		Prefetch:    true,
		Degree:      8,
		TableConfig: correlation.DefaultBlockTableConfig(),
	}
}

// warm drives a policy through a short launch/fault stream with repeated
// kernels, draining Next between faults, so every policy accumulates
// learnable state (correlation edges, learned sequences, adapted windows).
func warm(t *testing.T, p policy.Policy) {
	t.Helper()
	stream := []struct {
		exec   correlation.ExecID
		faults []um.BlockID
	}{
		{1, []um.BlockID{100, 101, 102, 110}},
		{2, []um.BlockID{200, 202, 204}},
		{3, []um.BlockID{300, 301}},
		{1, []um.BlockID{100, 101, 102, 111}},
		{2, []um.BlockID{200, 202, 206}},
		{3, []um.BlockID{300, 301}},
	}
	for _, k := range stream {
		p.KernelLaunch(k.exec)
		for _, b := range k.faults {
			p.OnFault(b)
			for i := 0; i < 32; i++ {
				if st := p.Next(); st.Out != policy.Emit {
					break
				}
			}
		}
		p.KernelComplete(k.exec)
	}
}

// save captures a policy's checkpoint payload.
func save(t *testing.T, p policy.Policy) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestPolicyCheckpointRoundTrip exercises every registered policy's Save /
// WarmPayload pair: the encoding is deterministic, a saved payload
// constructs a fresh instance, the payload frames through the checkpoint
// envelope losslessly, and hostile payloads (truncation, trailing bytes)
// are rejected at construction — never absorbed silently.
func TestPolicyCheckpointRoundTrip(t *testing.T) {
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			p, err := policy.New(name, newOpts())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			warm(t, p)

			p1 := save(t, p)
			if p2 := save(t, p); !bytes.Equal(p1, p2) {
				t.Fatal("Save is not deterministic: two saves of the same state differ")
			}

			// The payload must frame through the envelope losslessly under
			// its policy name.
			var env bytes.Buffer
			if err := correlation.WriteEnvelope(&env, name, p1); err != nil {
				t.Fatalf("WriteEnvelope: %v", err)
			}
			gotName, gotPayload, err := correlation.ReadEnvelope(bytes.NewReader(env.Bytes()))
			if err != nil {
				t.Fatalf("ReadEnvelope: %v", err)
			}
			if gotName != name || !bytes.Equal(gotPayload, p1) {
				t.Fatalf("envelope round trip: got (%q, %d bytes), want (%q, %d bytes)",
					gotName, len(gotPayload), name, len(p1))
			}

			// A saved payload must construct a fresh instance of its policy.
			opts := newOpts()
			opts.WarmPayload = p1
			restored, err := policy.New(name, opts)
			if err != nil {
				t.Fatalf("New from own Save output: %v", err)
			}
			if restored.Name() != name {
				t.Fatalf("restored policy names itself %q, want %q", restored.Name(), name)
			}

			// Hostile payloads: truncation mid-stream and appended garbage
			// must both fail construction.
			if len(p1) > 2 {
				bad := newOpts()
				bad.WarmPayload = p1[:len(p1)/2+1]
				if _, err := policy.New(name, bad); err == nil {
					t.Error("truncated payload accepted")
				}
			}
			trailing := newOpts()
			trailing.WarmPayload = append(bytes.Clone(p1), 0xde, 0xad)
			if _, err := policy.New(name, trailing); err == nil {
				t.Error("payload with trailing garbage accepted")
			}
		})
	}
}

// TestCorrelationPayloadFixedPoint pins the strongest property the
// correlation policy has: Save -> restore -> Save reproduces the payload
// byte for byte (the table encoding is canonical).
func TestCorrelationPayloadFixedPoint(t *testing.T) {
	p, err := policy.New("correlation", newOpts())
	if err != nil {
		t.Fatal(err)
	}
	warm(t, p)
	p1 := save(t, p)
	opts := newOpts()
	opts.WarmPayload = p1
	restored, err := policy.New("correlation", opts)
	if err != nil {
		t.Fatal(err)
	}
	if p2 := save(t, restored); !bytes.Equal(p1, p2) {
		t.Fatalf("correlation payload not a fixed point: %d -> %d bytes", len(p1), len(p2))
	}
}

// TestLearnedRestoreReplaysSequence pins what a learned-policy checkpoint
// is FOR: a restored instance, relaunched on a remembered kernel, replays
// that kernel's saved fault sequence from the first fault — the warm-up
// the checkpoint was supposed to skip.
func TestLearnedRestoreReplaysSequence(t *testing.T) {
	p, err := policy.New("learned", newOpts())
	if err != nil {
		t.Fatal(err)
	}
	warm(t, p)
	payload := save(t, p)

	opts := newOpts()
	opts.WarmPayload = payload
	restored, err := policy.New("learned", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel 1's last committed sequence (from warm's stream) begins
	// 100, 101, 102; fault on 100 and the replay must emit 101 then 102.
	restored.KernelLaunch(1)
	if !restored.OnFault(100) {
		t.Fatal("restored policy did not restart prediction on a remembered block")
	}
	want := []um.BlockID{101, 102}
	for i, w := range want {
		st := restored.Next()
		if st.Out != policy.Emit || st.Cmd.Block != w {
			t.Fatalf("replay step %d: got out=%d block=%d, want Emit %d", i, st.Out, st.Cmd.Block, w)
		}
	}
}
