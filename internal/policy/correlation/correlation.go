// Package correlation implements the paper's correlation prefetcher (§4.2)
// as a pluggable prefetch policy: per-kernel UM-block correlation tables
// plus an execution-ID table predict the fault stream of the current and
// next N kernels, and a chain cursor walks the prediction block by block.
// It is the extraction of the logic that used to live inline in
// internal/core.Driver, bit-identical to it (TestPolicyEquivalence pins the
// AccessChecksum at every health-ladder rung).
package correlation

import (
	"fmt"
	"io"

	corr "deepum/internal/correlation"
	"deepum/internal/policy"
	"deepum/internal/um"
)

// Name is the registered policy name; it is the default policy.
const Name = "correlation"

func init() {
	policy.Register(Name,
		"DeepUM correlation tables with degree-N kernel chaining (paper §4.2)",
		New)
}

// Chaser is the correlation policy: launch-history learning, chain restart
// on every fault, and degree-bounded chaining across predicted kernels.
type Chaser struct {
	prefetch bool
	degree   int
	tables   *corr.Tables

	// Launch history: the three kernels before the current one, oldest
	// first, and the current one.
	history [corr.HistoryLen]corr.ExecID
	current corr.ExecID
	// historyBeforeCurrent is the window used when recording the transition
	// out of current.
	historyBeforeCurrent [corr.HistoryLen]corr.ExecID

	cursor *corr.ChainCursor
	// completedInChain counts kernels finished since the chain (re)started;
	// the chain may run Degree kernels ahead of it.
	completedInChain int

	gate policy.Gate
}

// New builds the correlation policy. Warm state arrives either as decoded
// tables (Options.WarmTables) or as a checkpoint payload (WarmPayload); the
// policy adopts warm tables' own configuration so the set-index hash and
// successor limits match the state being resumed.
func New(opts policy.Options) (policy.Policy, error) {
	degree := opts.Degree
	if degree < 1 {
		degree = 1
	}
	cfg := opts.TableConfig
	if cfg.NumRows == 0 {
		cfg = corr.DefaultBlockTableConfig()
	}
	tables := opts.WarmTables
	if tables == nil && len(opts.WarmPayload) > 0 {
		t, err := corr.DecodeTables(opts.WarmPayload)
		if err != nil {
			return nil, fmt.Errorf("policy %s: decoding warm state: %w", Name, err)
		}
		tables = t
	}
	if tables == nil {
		tables = corr.NewTables(cfg)
	}
	c := &Chaser{
		prefetch: opts.Prefetch,
		degree:   degree,
		tables:   tables,
		current:  corr.NoExec,
	}
	for i := range c.history {
		c.history[i] = corr.NoExec
	}
	return c, nil
}

// Name implements policy.Policy.
func (c *Chaser) Name() string { return Name }

// Tables exposes the correlation tables (Table 4 sizes, the typed facade
// checkpoint path, cmd/deepum-inspect).
func (c *Chaser) Tables() *corr.Tables { return c.tables }

// KernelLaunch records the transition of the previously running kernel and
// resets the new kernel's miss cursor.
func (c *Chaser) KernelLaunch(id corr.ExecID) {
	if c.current != corr.NoExec {
		c.tables.Exec.Record(c.current, c.historyBeforeCurrent, id)
	}
	// Slide the history window.
	c.historyBeforeCurrent = c.history
	copy(c.history[:], c.history[1:])
	c.history[corr.HistoryLen-1] = c.current
	c.current = id
	c.tables.Block(id).ResetCursor()
}

// KernelComplete slides the chain window: a paused chain may resume because
// one more kernel of lookahead budget is available (§4.2).
func (c *Chaser) KernelComplete(id corr.ExecID) {
	if c.cursor != nil {
		c.completedInChain++
	}
}

// OnFault updates the block table of the current kernel and — when
// prefetching is enabled — restarts chaining from the faulted block (§4.2:
// each fault restarts the chain).
func (c *Chaser) OnFault(b um.BlockID) bool {
	if c.current == corr.NoExec {
		return false
	}
	c.tables.Block(c.current).RecordMiss(b)
	if !c.prefetch {
		return false
	}
	c.cursor = c.tables.NewChainCursor(c.current, c.history, b)
	c.completedInChain = 0
	return true
}

// Next advances the chain one block: gated by the ladder's enqueue and
// degree capabilities, paused at the degree-N boundary, dead when the chain
// runs out of predictions.
func (c *Chaser) Next() policy.Step {
	if c.cursor == nil {
		return policy.Step{Out: policy.Pause}
	}
	degree := c.degree
	if c.gate != nil {
		if !c.gate.AllowPrefetchEnqueue() {
			// Ladder at L3: the chain keeps learning, but issues nothing.
			return policy.Step{Out: policy.Pause}
		}
		if degree = c.gate.DegreeCap(degree); degree < 1 {
			return policy.Step{Out: policy.Pause}
		}
	}
	if c.cursor.Kernels()-c.completedInChain >= degree {
		return policy.Step{Out: policy.Pause}
	}
	b, exec := c.cursor.Next()
	if b == um.NoBlock {
		cause := c.cursor.DeathCause
		c.cursor = nil
		return policy.Step{Out: policy.Dead, Cause: cause}
	}
	return policy.Step{Out: policy.Emit, Cmd: policy.Command{Block: b, Exec: exec}}
}

// NoteEviction implements policy.Policy; the protected-set requeue is
// driver mechanism, and the chain itself needs no eviction bookkeeping.
func (c *Chaser) NoteEviction(b um.BlockID) {}

// Discard kills the active chain; the learned tables survive.
func (c *Chaser) Discard() { c.cursor = nil }

// SetGate implements policy.Policy.
func (c *Chaser) SetGate(g policy.Gate) { c.gate = g }

// SizeBytes implements policy.Policy: the correlation-table memory.
func (c *Chaser) SizeBytes() int64 { return c.tables.SizeBytes() }

// Save writes the deterministic table payload (the body a checkpoint
// envelope wraps under this policy's name).
func (c *Chaser) Save(w io.Writer) error {
	_, err := w.Write(corr.EncodeTables(c.tables))
	return err
}
