// Package gpuvm implements a GPU-driven demand-window prefetch policy after
// GPUVM (arXiv 2411.05309): no kernel-chaining and no correlation tables —
// each fault opens a contiguous window of blocks past the faulting address,
// sized adaptively by how sequential the recent fault stream looks, and
// recently evicted blocks are suppressed from re-prefetch for a cool-down
// measured in faults (standing in for GPUVM's access-bit-driven eviction
// feedback: a block the host just reclaimed is cold by definition).
//
// The policy is deliberately stateless across kernels; it is the
// "hardware-style" baseline the correlation and learned policies are
// ranked against in the deepum-bench tournament.
package gpuvm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"deepum/internal/correlation"
	"deepum/internal/policy"
	"deepum/internal/um"
)

// Name is the registered policy name.
const Name = "gpuvm-window"

func init() {
	policy.Register(Name,
		"GPUVM-style adaptive demand windows, no chaining, eviction cool-down (arXiv 2411.05309 style)",
		New)
}

const (
	windowInit = 16
	windowMin  = 4
	windowMax  = 512
	// evictCooldown suppresses re-prefetch of an evicted block for this many
	// subsequent faults.
	evictCooldown = 256
	// evictTrack bounds the recently-evicted map.
	evictTrack = 4096
)

// Window is the policy instance.
type Window struct {
	prefetch bool
	gate     policy.Gate

	window    int
	lastFault um.BlockID
	haveLast  bool
	faultTick int64

	// active demand window: emit base+idx while idx <= window.
	active bool
	base   um.BlockID
	idx    int
	exec   correlation.ExecID

	// evicted maps block -> faultTick at eviction time.
	evicted map[um.BlockID]int64
}

// New builds the demand-window policy; WarmPayload restores a Save snapshot.
func New(opts policy.Options) (policy.Policy, error) {
	if opts.WarmTables != nil {
		return nil, fmt.Errorf("policy %s: WarmTables carries correlation tables; this policy has none to warm", Name)
	}
	w := &Window{
		prefetch: opts.Prefetch,
		window:   windowInit,
		exec:     correlation.NoExec,
		evicted:  make(map[um.BlockID]int64),
	}
	if len(opts.WarmPayload) > 0 {
		if err := w.load(opts.WarmPayload); err != nil {
			return nil, fmt.Errorf("policy %s: decoding warm state: %w", Name, err)
		}
	}
	return w, nil
}

// Name implements policy.Policy.
func (w *Window) Name() string { return Name }

// KernelLaunch only tracks the current execution ID so emitted commands
// attribute prefetches to the kernel that triggered them.
func (w *Window) KernelLaunch(id correlation.ExecID) { w.exec = id }

// KernelComplete implements policy.Policy (windows do not chain).
func (w *Window) KernelComplete(id correlation.ExecID) {}

// OnFault adapts the window — grow on a sequential fault, shrink otherwise
// — and opens a fresh demand window past the faulting block.
func (w *Window) OnFault(b um.BlockID) bool {
	w.faultTick++
	if w.haveLast {
		if b == w.lastFault+1 {
			if w.window *= 2; w.window > windowMax {
				w.window = windowMax
			}
		} else if b != w.lastFault {
			if w.window /= 2; w.window < windowMin {
				w.window = windowMin
			}
		}
	}
	w.lastFault = b
	w.haveLast = true
	if !w.prefetch {
		return false
	}
	w.active = true
	w.base = b
	w.idx = 1
	return true
}

// Next emits the window one block at a time, skipping blocks inside the
// eviction cool-down; a window never dies, it only runs out (Pause).
func (w *Window) Next() policy.Step {
	if !w.active {
		return policy.Step{Out: policy.Pause}
	}
	window := w.window
	if w.gate != nil {
		if !w.gate.AllowPrefetchEnqueue() {
			return policy.Step{Out: policy.Pause}
		}
		if window = w.gate.DegreeCap(window); window < 1 {
			return policy.Step{Out: policy.Pause}
		}
	}
	for w.idx <= window {
		b := w.base + um.BlockID(w.idx)
		w.idx++
		if tick, ok := w.evicted[b]; ok {
			if w.faultTick-tick < evictCooldown {
				continue // still cooling down; skip, don't thrash
			}
			delete(w.evicted, b)
		}
		return policy.Step{Out: policy.Emit, Cmd: policy.Command{Block: b, Exec: w.exec}}
	}
	w.active = false
	return policy.Step{Out: policy.Pause}
}

// NoteEviction starts the block's cool-down (the access-bit stand-in).
func (w *Window) NoteEviction(b um.BlockID) {
	if len(w.evicted) >= evictTrack {
		// Bounded map: drop expired entries; if none expired, drop nothing
		// and skip recording (pathological churn).
		for k, tick := range w.evicted {
			if w.faultTick-tick >= evictCooldown {
				delete(w.evicted, k)
			}
		}
		if len(w.evicted) >= evictTrack {
			return
		}
	}
	w.evicted[b] = w.faultTick
}

// Discard closes the open window; the adaptive window size survives.
func (w *Window) Discard() { w.active = false }

// SetGate implements policy.Policy.
func (w *Window) SetGate(g policy.Gate) { w.gate = g }

// SizeBytes implements policy.Policy.
func (w *Window) SizeBytes() int64 {
	return 64 + int64(len(w.evicted))*16
}

// Save persists the adaptive window size — the only state worth carrying
// across a resume (cool-downs and open windows are transient).
func (w *Window) Save(out io.Writer) error {
	var buf bytes.Buffer
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(w.window))
	buf.Write(b[:])
	_, err := out.Write(buf.Bytes())
	return err
}

func (w *Window) load(payload []byte) error {
	if len(payload) != 4 {
		return fmt.Errorf("payload is %d bytes, want 4", len(payload))
	}
	v := int(binary.LittleEndian.Uint32(payload))
	if v < windowMin || v > windowMax {
		return fmt.Errorf("window %d outside [%d,%d]", v, windowMin, windowMax)
	}
	w.window = v
	return nil
}
