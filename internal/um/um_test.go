package um

import (
	"testing"
	"testing/quick"

	"deepum/internal/sim"
)

func TestBlockOfPageOf(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(Addr(sim.BlockSize-1)) != 0 || BlockOf(Addr(sim.BlockSize)) != 1 {
		t.Fatal("BlockOf boundary broken")
	}
	if PageOf(0) != 0 || PageOf(Addr(sim.PageSize)) != 1 {
		t.Fatal("PageOf broken")
	}
	if BlockID(3).Start() != Addr(3*sim.BlockSize) {
		t.Fatal("BlockID.Start broken")
	}
}

func TestSpaceMallocFree(t *testing.T) {
	s := NewSpace(0)
	a, err := s.Malloc(10 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if int64(a)%sim.PageSize != 0 {
		t.Fatalf("allocation base %d not page aligned", a)
	}
	if s.AllocatedBytes() != 10*sim.MiB {
		t.Fatalf("allocated = %d, want 10MiB", s.AllocatedBytes())
	}
	blocks := BlocksOf(a, 10*sim.MiB)
	if len(blocks) != 5 {
		t.Fatalf("10MiB spans %d blocks, want 5", len(blocks))
	}
	for _, b := range blocks {
		if got := s.Block(b).AllocatedPages; got != sim.PagesPerBlock {
			t.Fatalf("block %d allocated pages = %d, want %d", b, got, sim.PagesPerBlock)
		}
	}
	s.Free(a, 10*sim.MiB)
	if s.AllocatedBytes() != 0 {
		t.Fatalf("allocated after free = %d", s.AllocatedBytes())
	}
	for _, b := range blocks {
		if got := s.Block(b).AllocatedPages; got != 0 {
			t.Fatalf("block %d pages after free = %d", b, got)
		}
	}
}

func TestSpacePartialBlock(t *testing.T) {
	s := NewSpace(0)
	a, err := s.Malloc(3 * sim.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Block(BlockOf(a)).AllocatedPages; got != 3 {
		t.Fatalf("partial block pages = %d, want 3", got)
	}
	if got := s.Block(BlockOf(a)).Bytes(); got != 3*sim.PageSize {
		t.Fatalf("partial block bytes = %d", got)
	}
	// Sub-page allocation rounds up to a page.
	b, err := s.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if int64(b)%sim.PageSize != 0 {
		t.Fatalf("sub-page allocation base %d not aligned", b)
	}
}

func TestSpaceHostLimit(t *testing.T) {
	s := NewSpace(4 * sim.MiB)
	if _, err := s.Malloc(3 * sim.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Malloc(2 * sim.MiB); err != ErrHostExhausted {
		t.Fatalf("over-limit malloc err = %v, want ErrHostExhausted", err)
	}
	// Still room for 1MiB.
	if _, err := s.Malloc(1 * sim.MiB); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceInvalidSize(t *testing.T) {
	s := NewSpace(0)
	if _, err := s.Malloc(0); err == nil {
		t.Fatal("Malloc(0) must fail")
	}
	if _, err := s.Malloc(-5); err == nil {
		t.Fatal("Malloc(-5) must fail")
	}
}

func TestPagesIn(t *testing.T) {
	base := Addr(sim.BlockSize - 2*sim.PageSize) // 2 pages in block 0, rest in 1
	n := int64(6 * sim.PageSize)
	if got := PagesIn(base, n, 0); got != 2 {
		t.Fatalf("pages in block 0 = %d, want 2", got)
	}
	if got := PagesIn(base, n, 1); got != 4 {
		t.Fatalf("pages in block 1 = %d, want 4", got)
	}
	if got := PagesIn(base, n, 2); got != 0 {
		t.Fatalf("pages in block 2 = %d, want 0", got)
	}
}

func TestBlocksOfEmpty(t *testing.T) {
	if got := BlocksOf(0, 0); got != nil {
		t.Fatalf("BlocksOf zero size = %v", got)
	}
}

func TestRangeAllocatorReuse(t *testing.T) {
	r := NewRangeAllocator()
	a := r.Alloc(100)
	b := r.Alloc(200)
	r.Free(a, 100)
	c := r.Alloc(50) // first-fit reuses the hole at a
	if c != a {
		t.Fatalf("first fit returned %d, want %d", c, a)
	}
	r.Free(b, 200)
	r.Free(c, 50) // coalesces with the hole [a+50, a+100) already free
	if r.InUse() != 0 {
		t.Fatalf("in use after freeing everything = %d", r.InUse())
	}
	if r.HighWater() != 0 {
		t.Fatalf("high water should shrink to 0 after full coalesce, got %d", r.HighWater())
	}
}

func TestRangeAllocatorBoundedFragmentation(t *testing.T) {
	r := NewBoundedRangeAllocator(1000)
	var addrs []Addr
	for i := 0; i < 10; i++ {
		a := r.Alloc(100)
		if a < 0 {
			t.Fatalf("alloc %d failed", i)
		}
		addrs = append(addrs, a)
	}
	if r.Alloc(1) >= 0 {
		t.Fatal("full heap must reject allocation")
	}
	// Free every other 100-byte range: 500 bytes free but largest hole 100.
	for i := 0; i < 10; i += 2 {
		r.Free(addrs[i], 100)
	}
	if r.Alloc(200) >= 0 {
		t.Fatal("fragmented heap must reject a 200-byte allocation")
	}
	if r.LargestFree() != 100 {
		t.Fatalf("largest free = %d, want 100", r.LargestFree())
	}
	if a := r.Alloc(100); a < 0 {
		t.Fatal("100-byte allocation must fit a hole")
	}
}

// TestRangeAllocatorQuick: random alloc/free sequences never hand out
// overlapping ranges, and InUse matches the oracle.
func TestRangeAllocatorQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRangeAllocator()
		type allocation struct {
			base Addr
			size int64
		}
		var live []allocation
		var inUse int64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := int64(op%64+1) * 16
				base := r.Alloc(size)
				for _, l := range live {
					if int64(base) < int64(l.base)+l.size && int64(l.base) < int64(base)+size {
						return false // overlap
					}
				}
				live = append(live, allocation{base, size})
				inUse += size
			} else {
				i := int(op) % len(live)
				r.Free(live[i].base, live[i].size)
				inUse -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
			if r.InUse() != inUse {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultBuffer(t *testing.T) {
	fb := NewFaultBuffer(2)
	fb.Push(Fault{Page: 1})
	fb.Push(Fault{Page: 2})
	fb.Push(Fault{Page: 3}) // overflow
	if fb.Len() != 2 || fb.Dropped() != 1 || fb.Total() != 3 {
		t.Fatalf("len=%d dropped=%d total=%d", fb.Len(), fb.Dropped(), fb.Total())
	}
	got := fb.Drain()
	if len(got) != 2 || got[0].Page != 1 || got[1].Page != 2 {
		t.Fatalf("drain = %v", got)
	}
	if fb.Len() != 0 {
		t.Fatal("buffer not empty after drain")
	}
	if NewFaultBuffer(0).capacity != DefaultFaultBufferCap {
		t.Fatal("default capacity not applied")
	}
}

func TestPreprocess(t *testing.T) {
	p0 := int64(0)                 // block 0
	p1 := int64(1)                 // block 0
	p2 := int64(sim.PagesPerBlock) // block 1
	p3 := int64(sim.PagesPerBlock) + 1
	faults := []Fault{
		{Page: p0, Type: Read},
		{Page: p2, Type: Read},
		{Page: p0, Type: Write}, // duplicate page: dropped entirely
		{Page: p1, Type: Write},
		{Page: p3, Type: Read},
	}
	groups := Preprocess(faults)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Block != 0 || len(groups[0].Pages) != 2 || !groups[0].Write {
		t.Fatalf("group0 = %+v", groups[0])
	}
	if groups[1].Block != 1 || len(groups[1].Pages) != 2 || groups[1].Write {
		t.Fatalf("group1 = %+v", groups[1])
	}
}

func newTestHandler(gpuBlocks int64) (*Handler, *Space) {
	p := sim.DefaultParams()
	p.GPUMemory = gpuBlocks * sim.BlockSize
	s := NewSpace(0)
	res := NewResidency(s, p.GPUMemory)
	return &Handler{
		Params:      p,
		Space:       s,
		Res:         res,
		Link:        sim.NewDuplex(p, nil),
		Policy:      LRMPolicy{},
		Invalidator: NoInvalidate{},
	}, s
}

func TestResidencyLRMOrder(t *testing.T) {
	h, s := newTestHandler(10)
	a, _ := s.Malloc(3 * sim.BlockSize)
	bs := BlocksOf(a, 3*sim.BlockSize)
	h.Res.Insert(bs[0], sim.PagesPerBlock, 10, 10)
	h.Res.Insert(bs[1], sim.PagesPerBlock, 20, 20)
	h.Res.Insert(bs[2], sim.PagesPerBlock, 30, 30)
	if h.Res.Oldest() != bs[0] {
		t.Fatalf("oldest = %d, want %d", h.Res.Oldest(), bs[0])
	}
	// Re-migration refreshes order.
	h.Res.Insert(bs[0], sim.PagesPerBlock, 40, 40)
	if h.Res.Oldest() != bs[1] {
		t.Fatalf("after refresh oldest = %d, want %d", h.Res.Oldest(), bs[1])
	}
	var walked []BlockID
	h.Res.WalkLRM(func(b BlockID) bool { walked = append(walked, b); return true })
	if len(walked) != 3 || walked[0] != bs[1] || walked[1] != bs[2] || walked[2] != bs[0] {
		t.Fatalf("walk order = %v", walked)
	}
	h.Res.Remove(bs[1])
	if h.Res.Count() != 2 || h.Res.Oldest() != bs[2] {
		t.Fatalf("after remove: count=%d oldest=%d", h.Res.Count(), h.Res.Oldest())
	}
	h.Res.Remove(bs[1]) // double remove is a no-op
	if h.Res.Count() != 2 {
		t.Fatal("double remove changed count")
	}
}

func TestResidencyAccounting(t *testing.T) {
	h, s := newTestHandler(4)
	a, _ := s.Malloc(2 * sim.BlockSize)
	bs := BlocksOf(a, 2*sim.BlockSize)
	if h.Res.Free() != 4*sim.BlockSize {
		t.Fatalf("free = %d", h.Res.Free())
	}
	h.Res.Insert(bs[0], sim.PagesPerBlock, 0, 0)
	h.Res.Insert(bs[1], sim.PagesPerBlock, 0, 0)
	if h.Res.Used() != 2*sim.BlockSize || h.Res.Free() != 2*sim.BlockSize {
		t.Fatalf("used=%d free=%d", h.Res.Used(), h.Res.Free())
	}
	if !h.Res.Resident(bs[0]) || h.Res.Resident(BlockID(100)) {
		t.Fatal("Resident() wrong")
	}
	h.Res.Touch(bs[0], true)
	if !s.Block(bs[0]).Dirty {
		t.Fatal("Touch(write) did not set Dirty")
	}
}

// faultWholeBlock raises a fault covering every allocated page of b.
func faultWholeBlock(h *Handler, now sim.Time, b BlockID, write bool) sim.Time {
	return h.HandleGroups(now, []FaultGroup{{Block: b, Count: sim.PagesPerBlock, Write: write}})
}

func TestHandlerMigratesFaultedBlocks(t *testing.T) {
	h, s := newTestHandler(10)
	a, _ := s.Malloc(2 * sim.BlockSize)
	bs := BlocksOf(a, 2*sim.BlockSize)
	s.Block(bs[0]).HostPopulated = true
	s.Block(bs[1]).HostPopulated = true
	var migrated []BlockID
	h.OnMigrated = func(b BlockID, _ sim.Time) { migrated = append(migrated, b) }

	end := h.HandleGroups(0, []FaultGroup{
		{Block: bs[0], Count: sim.PagesPerBlock, Write: false},
		{Block: bs[1], Count: sim.PagesPerBlock, Write: true},
	})
	if end <= 0 {
		t.Fatal("handling took no time")
	}
	if !h.Res.Resident(bs[0]) || !h.Res.Resident(bs[1]) {
		t.Fatal("faulted blocks not resident")
	}
	if len(migrated) != 2 {
		t.Fatalf("OnMigrated calls = %d, want 2", len(migrated))
	}
	if h.Stats.PageFaults != 2*sim.PagesPerBlock || h.Stats.BlocksMigrated != 2 || h.Stats.Batches != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
	if !s.Block(bs[1]).Dirty {
		t.Fatal("write fault did not dirty the block")
	}
	// Cost must include batch overhead + 2 block transfers + replay.
	p := h.Params
	minCost := p.FaultBatchOverhead + 2*p.TransferTime(sim.BlockSize) + p.ReplayLatency
	if end.Sub(0) < minCost {
		t.Fatalf("handle cost %v < floor %v", end.Sub(0), minCost)
	}
}

func TestHandlerZeroFillFirstTouch(t *testing.T) {
	h, s := newTestHandler(10)
	a, _ := s.Malloc(sim.BlockSize)
	b := BlockOf(a)
	end := faultWholeBlock(h, 0, b, true)
	if !h.Res.Resident(b) {
		t.Fatal("zero-filled block not resident")
	}
	if h.Stats.ZeroFills != 1 {
		t.Fatalf("zero fills = %d, want 1", h.Stats.ZeroFills)
	}
	h2d, _ := h.Link.Traffic()
	if h2d != 0 {
		t.Fatalf("first touch transferred %d bytes, want 0 (zero fill)", h2d)
	}
	// Cost is overhead only: no transfer stall.
	p := h.Params
	maxCost := p.FaultBatchOverhead + p.FaultBlockOverhead + p.ReplayLatency
	if end.Sub(0) != maxCost {
		t.Fatalf("zero-fill cost %v, want %v", end.Sub(0), maxCost)
	}
	if s.Block(b).HostPopulated {
		t.Fatal("zero fill must not mark the host populated")
	}
}

func TestHandlerPartialPageMigration(t *testing.T) {
	h, s := newTestHandler(10)
	a, _ := s.Malloc(sim.BlockSize)
	b := BlockOf(a)
	s.Block(b).HostPopulated = true
	// Fault on 8 pages only (a DLRM-style sparse touch).
	h.HandleGroups(0, []FaultGroup{{Block: b, Count: 8}})
	h2d, _ := h.Link.Traffic()
	if h2d != 8*sim.PageSize {
		t.Fatalf("partial fault transferred %d, want %d", h2d, 8*sim.PageSize)
	}
	if got := s.Block(b).ResidentPages; got != 8 {
		t.Fatalf("resident pages = %d, want 8", got)
	}
	if h.Res.Used() != 8*sim.PageSize {
		t.Fatalf("device usage = %d, want 8 pages", h.Res.Used())
	}
}

func TestHandlerEmptyBatch(t *testing.T) {
	h, _ := newTestHandler(2)
	if end := h.Handle(42, nil); end != 42 {
		t.Fatalf("empty batch end = %v, want 42", end)
	}
}

func TestHandlerEvictsWhenFull(t *testing.T) {
	h, s := newTestHandler(2) // room for 2 blocks
	a, _ := s.Malloc(3 * sim.BlockSize)
	bs := BlocksOf(a, 3*sim.BlockSize)
	faultWholeBlock(h, 0, bs[0], true)
	faultWholeBlock(h, 0, bs[1], true)
	if h.Stats.BlocksEvicted != 0 {
		t.Fatal("premature eviction")
	}
	faultWholeBlock(h, 0, bs[2], true)
	if h.Stats.BlocksEvicted != 1 {
		t.Fatalf("evicted = %d, want 1", h.Stats.BlocksEvicted)
	}
	// LRM policy must have evicted bs[0], the first migrated.
	if h.Res.Resident(bs[0]) {
		t.Fatal("LRM victim selection evicted the wrong block")
	}
	if !h.Res.Resident(bs[1]) || !h.Res.Resident(bs[2]) {
		t.Fatal("resident set wrong after eviction")
	}
	if h.Stats.EvictStall <= 0 {
		t.Fatal("eviction must cost time on the critical path")
	}
	_, d2h := h.Link.Traffic()
	if d2h != sim.BlockSize {
		t.Fatalf("eviction D2H traffic = %d, want one block", d2h)
	}
	// The evicted block's content now lives on the host: re-faulting it
	// costs a real transfer.
	if !s.Block(bs[0]).HostPopulated {
		t.Fatal("eviction must populate the host copy")
	}
	faultWholeBlock(h, 0, bs[0], false)
	h2d, _ := h.Link.Traffic()
	if h2d != sim.BlockSize {
		t.Fatalf("refetch H2D traffic = %d, want one block", h2d)
	}
}

type invalidateAll struct{}

func (invalidateAll) CanInvalidate(BlockID) bool { return true }

func TestHandlerInvalidationSkipsTransfer(t *testing.T) {
	h, s := newTestHandler(1)
	a, _ := s.Malloc(2 * sim.BlockSize)
	bs := BlocksOf(a, 2*sim.BlockSize)
	h.Invalidator = invalidateAll{}
	faultWholeBlock(h, 0, bs[0], true)
	faultWholeBlock(h, 0, bs[1], true)
	if h.Stats.BlocksDropped != 1 || h.Stats.BlocksEvicted != 0 {
		t.Fatalf("dropped=%d evicted=%d", h.Stats.BlocksDropped, h.Stats.BlocksEvicted)
	}
	_, d2h := h.Link.Traffic()
	if d2h != 0 {
		t.Fatalf("invalidation produced D2H traffic %d", d2h)
	}
	if s.Block(bs[0]).HostPopulated {
		t.Fatal("invalidated victim must not gain a host copy")
	}
}

func TestHandlerResidentFaultWaitsForReady(t *testing.T) {
	h, s := newTestHandler(4)
	a, _ := s.Malloc(sim.BlockSize)
	b := BlockOf(a)
	// Simulate a prefetch in flight: resident but ready only at t=1000000.
	h.Res.Insert(b, sim.PagesPerBlock, 0, 1_000_000)
	end := h.Handle(0, []Fault{{Page: int64(b) * sim.PagesPerBlock}})
	if end < 1_000_000 {
		t.Fatalf("fault on in-flight block finished at %v, want >= readyAt", end)
	}
	if h.Stats.BlocksMigrated != 0 {
		t.Fatal("in-flight block must not be migrated again")
	}
}

func TestHandlerZeroPageFault(t *testing.T) {
	h, _ := newTestHandler(4)
	// Fault on a block with no allocation: maps a zero page, no transfer.
	end := h.Handle(0, []Fault{{Page: 9999 * sim.PagesPerBlock}})
	h2d, _ := h.Link.Traffic()
	if h2d != 0 {
		t.Fatalf("zero-page fault transferred %d bytes", h2d)
	}
	if end <= 0 {
		t.Fatal("zero-page fault must still cost handling time")
	}
}

func TestLRMPolicySelectsEnough(t *testing.T) {
	h, s := newTestHandler(8)
	a, _ := s.Malloc(5 * sim.BlockSize)
	bs := BlocksOf(a, 5*sim.BlockSize)
	for i, b := range bs {
		h.Res.Insert(b, sim.PagesPerBlock, sim.Time(i), sim.Time(i))
	}
	victims := LRMPolicy{}.SelectVictims(h.Res, 3*sim.BlockSize)
	if len(victims) != 3 {
		t.Fatalf("victims = %d, want 3", len(victims))
	}
	for i, v := range victims {
		if v != bs[i] {
			t.Fatalf("victim[%d] = %d, want %d (LRM order)", i, v, bs[i])
		}
	}
}
