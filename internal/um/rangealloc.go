package um

import "sort"

// RangeAllocator is a first-fit address-range allocator with free-list
// coalescing. It backs two distinct uses:
//
//   - the unified virtual address space (Space.Malloc), where fragmentation
//     is harmless because pages are the migration unit; and
//   - the physical GPU heap model used by the non-UM baselines, where
//     fragmentation is exactly what makes them fail at large batch sizes
//     (§1, §6.2: "using pure GPU memory may suffer from memory
//     fragmentation").
type RangeAllocator struct {
	free []rng // sorted by start, coalesced
	top  int64 // high-water mark of the bump region
	// limit caps total address space; 0 means unbounded (virtual memory).
	limit int64
}

type rng struct{ start, size int64 }

// NewRangeAllocator returns an unbounded allocator (virtual address space).
func NewRangeAllocator() *RangeAllocator { return &RangeAllocator{} }

// NewBoundedRangeAllocator returns an allocator over [0, limit): a model of
// a fixed-size physical heap that can fail with fragmentation.
func NewBoundedRangeAllocator(limit int64) *RangeAllocator {
	return &RangeAllocator{limit: limit}
}

// Alloc returns the base of a free range of exactly n bytes, or -1 when the
// bounded heap cannot satisfy the request (out of memory or fragmented).
// Unbounded allocators never fail.
func (r *RangeAllocator) Alloc(n int64) Addr {
	for i, f := range r.free {
		if f.size >= n {
			base := f.start
			if f.size == n {
				r.free = append(r.free[:i], r.free[i+1:]...)
			} else {
				r.free[i] = rng{f.start + n, f.size - n}
			}
			return Addr(base)
		}
	}
	if r.limit > 0 && r.top+n > r.limit {
		return Addr(-1)
	}
	base := r.top
	r.top += n
	return Addr(base)
}

// Free returns [base, base+n) to the free list, coalescing neighbours.
func (r *RangeAllocator) Free(base Addr, n int64) {
	if n <= 0 {
		return
	}
	nr := rng{int64(base), n}
	i := sort.Search(len(r.free), func(i int) bool { return r.free[i].start >= nr.start })
	r.free = append(r.free, rng{})
	copy(r.free[i+1:], r.free[i:])
	r.free[i] = nr
	// Coalesce with successor then predecessor.
	if i+1 < len(r.free) && r.free[i].start+r.free[i].size == r.free[i+1].start {
		r.free[i].size += r.free[i+1].size
		r.free = append(r.free[:i+1], r.free[i+2:]...)
	}
	if i > 0 && r.free[i-1].start+r.free[i-1].size == r.free[i].start {
		r.free[i-1].size += r.free[i].size
		r.free = append(r.free[:i], r.free[i+1:]...)
	}
	// Shrink the bump region when the topmost range frees up.
	if len(r.free) > 0 {
		last := r.free[len(r.free)-1]
		if last.start+last.size == r.top {
			r.top = last.start
			r.free = r.free[:len(r.free)-1]
		}
	}
}

// InUse returns the number of allocated bytes.
func (r *RangeAllocator) InUse() int64 {
	free := int64(0)
	for _, f := range r.free {
		free += f.size
	}
	return r.top - free
}

// HighWater returns the bump-region high-water mark: the total address span
// ever touched. For a bounded heap, HighWater-InUse of free bytes that still
// cannot satisfy an allocation is the fragmentation signature.
func (r *RangeAllocator) HighWater() int64 { return r.top }

// LargestFree returns the size of the largest free range, counting the
// untouched tail of a bounded heap.
func (r *RangeAllocator) LargestFree() int64 {
	best := int64(0)
	for _, f := range r.free {
		if f.size > best {
			best = f.size
		}
	}
	if r.limit > 0 && r.limit-r.top > best {
		best = r.limit - r.top
	}
	return best
}
