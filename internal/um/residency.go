package um

import (
	"deepum/internal/sim"
)

// Residency tracks which UM blocks currently occupy GPU memory and keeps
// them ordered by migration time, oldest first — the NVIDIA driver's
// least-recently-migrated eviction order that both the stock eviction policy
// and DeepUM's pre-eviction policy (§5.1) walk.
type Residency struct {
	space    *Space
	capacity int64 // bytes of device memory
	used     int64 // bytes occupied by resident blocks
	count    int   // resident blocks

	head, tail BlockID // LRM list: head = least recently migrated
}

// NewResidency returns an empty residency manager for a device with the
// given memory capacity in bytes.
func NewResidency(space *Space, capacity int64) *Residency {
	return &Residency{space: space, capacity: capacity, head: NoBlock, tail: NoBlock}
}

// Capacity returns the device memory size in bytes.
func (r *Residency) Capacity() int64 { return r.capacity }

// Used returns the bytes occupied by resident blocks.
func (r *Residency) Used() int64 { return r.used }

// Free returns the unoccupied device memory in bytes.
func (r *Residency) Free() int64 { return r.capacity - r.used }

// Count returns the number of resident blocks.
func (r *Residency) Count() int { return r.count }

// Resident reports whether block b is mapped on the device.
func (r *Residency) Resident(b BlockID) bool { return r.space.Block(b).Resident }

// BlockBytes returns the allocated payload size of block b, a convenience
// for eviction policies sizing their victim sets.
func (r *Residency) BlockBytes(b BlockID) int64 { return r.space.Block(b).Bytes() }

// BlockResidentBytes returns the device memory block b currently occupies.
func (r *Residency) BlockResidentBytes(b BlockID) int64 {
	return r.space.Block(b).ResidentBytes()
}

// Insert marks block b resident as of time now with pages materialized on
// the device, its migration finishing at ready. The block moves to the
// most-recently-migrated end of the LRM list. Inserting an already-resident
// block refreshes its migration time and tops up its page count (a fault
// that materializes more pages, or a re-migration after eviction).
func (r *Residency) Insert(b BlockID, pages int64, now, ready sim.Time) {
	blk := r.space.Block(b)
	if pages > blk.AllocatedPages {
		pages = blk.AllocatedPages
	}
	if pages < 1 {
		pages = 1
	}
	if blk.Resident {
		r.unlink(b)
		if pages > blk.ResidentPages {
			r.used += (pages - blk.ResidentPages) * sim.PageSize
			blk.ResidentPages = pages
		}
	} else {
		blk.Resident = true
		blk.ResidentPages = pages
		r.used += pages * sim.PageSize
		r.count++
	}
	blk.LastMigrated = now
	blk.ReadyAt = ready
	blk.Dirty = false
	r.pushBack(b)
}

// TopUp materializes additional pages of an already-resident block without
// refreshing its position in the LRM order: the engine uses it when a kernel
// touches pages of a resident block that an earlier, smaller fault did not
// cover (e.g. a second tensor sharing the block).
func (r *Residency) TopUp(b BlockID, pages int64) {
	blk := r.space.Block(b)
	if !blk.Resident || pages <= 0 {
		return
	}
	total := blk.ResidentPages + pages
	if total > blk.AllocatedPages {
		total = blk.AllocatedPages
	}
	if total > blk.ResidentPages {
		r.used += (total - blk.ResidentPages) * sim.PageSize
		blk.ResidentPages = total
	}
}

// Remove unmaps block b from the device (eviction or invalidation). It is a
// no-op for non-resident blocks.
func (r *Residency) Remove(b BlockID) {
	blk := r.space.Block(b)
	if !blk.Resident {
		return
	}
	blk.Resident = false
	r.used -= blk.ResidentBytes()
	blk.ResidentPages = 0
	r.count--
	r.unlink(b)
}

// Touch marks a device-side write to a resident block.
func (r *Residency) Touch(b BlockID, write bool) {
	if write {
		r.space.Block(b).Dirty = true
	}
}

// Oldest returns the least-recently-migrated resident block, or NoBlock.
func (r *Residency) Oldest() BlockID { return r.head }

// NextOlder returns the successor of b in LRM order (towards more recently
// migrated), or NoBlock at the end.
func (r *Residency) NextOlder(b BlockID) BlockID { return r.space.Block(b).next }

// WalkLRM calls fn on resident blocks from least to most recently migrated
// until fn returns false.
func (r *Residency) WalkLRM(fn func(BlockID) bool) {
	for b := r.head; b != NoBlock; {
		next := r.space.Block(b).next // fn may remove b
		if !fn(b) {
			return
		}
		b = next
	}
}

// WalkMRM calls fn on resident blocks from most to least recently migrated
// until fn returns false — the order in which over-eager prefetches are
// sacrificed when everything resident is predicted for upcoming kernels.
func (r *Residency) WalkMRM(fn func(BlockID) bool) {
	for b := r.tail; b != NoBlock; {
		prev := r.space.Block(b).prev // fn may remove b
		if !fn(b) {
			return
		}
		b = prev
	}
}

func (r *Residency) pushBack(b BlockID) {
	blk := r.space.Block(b)
	blk.prev, blk.next = r.tail, NoBlock
	if r.tail != NoBlock {
		r.space.Block(r.tail).next = b
	} else {
		r.head = b
	}
	r.tail = b
}

func (r *Residency) unlink(b BlockID) {
	blk := r.space.Block(b)
	if blk.prev != NoBlock {
		r.space.Block(blk.prev).next = blk.next
	} else {
		r.head = blk.next
	}
	if blk.next != NoBlock {
		r.space.Block(blk.next).prev = blk.prev
	} else {
		r.tail = blk.prev
	}
	blk.prev, blk.next = NoBlock, NoBlock
}
