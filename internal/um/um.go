// Package um models CUDA Unified Memory as described in §2.2-§2.3 of the
// DeepUM paper: a single address space shared by CPU and GPU, 4 KiB pages
// grouped into UM blocks of up to 512 contiguous pages (2 MiB), a hardware
// fault buffer, and the NVIDIA driver's nine-step page-fault handling
// pipeline with eviction on the critical path.
//
// The package is the substrate the DeepUM driver (internal/core) optimizes;
// it is deliberately policy-free: eviction victim selection and invalidation
// decisions are injected through small interfaces.
package um

import (
	"fmt"

	"deepum/internal/sim"
)

// Addr is a byte address in the unified virtual address space.
type Addr int64

// BlockID identifies a UM block: the index of a 2 MiB-aligned region of the
// unified address space.
type BlockID int64

// NoBlock is the nil value for block references.
const NoBlock BlockID = -1

// BlockOf returns the UM block containing the address.
func BlockOf(a Addr) BlockID { return BlockID(int64(a) / sim.BlockSize) }

// PageOf returns the page index (global, within the whole space) of a.
func PageOf(a Addr) int64 { return int64(a) / sim.PageSize }

// Start returns the first byte address of the block.
func (b BlockID) Start() Addr { return Addr(int64(b) * sim.BlockSize) }

// AccessType distinguishes read and write faulted accesses; the NVIDIA
// driver records it in the fault buffer together with the address.
type AccessType uint8

const (
	// Read marks a read faulted access.
	Read AccessType = iota
	// Write marks a write faulted access.
	Write
)

// Fault is one entry of the GPU fault buffer: a faulted page access.
type Fault struct {
	Page int64 // global page index
	Type AccessType
}

// Block holds the driver-side state of one UM block. All pages of a block
// are processed together by the fault handler, matching the NVIDIA driver's
// management granularity, but population is tracked at page counts so that
// sparse workloads (DLRM) migrate only the pages they fault on.
type Block struct {
	// AllocatedPages is the number of pages of this block that belong to a
	// live UM allocation.
	AllocatedPages int64
	// Resident reports whether the block is mapped in GPU memory.
	Resident bool
	// ResidentPages is the number of pages materialized on the device while
	// Resident: faulted pages for on-demand migration, all allocated pages
	// for a prefetch.
	ResidentPages int64
	// HostPopulated reports whether the host backing store holds content
	// for this block. A fresh allocation is unpopulated: its first GPU
	// access zero-fills device pages without any H2D transfer, and only an
	// eviction writes content back to the host.
	HostPopulated bool
	// ReadyAt is the time the most recent H2D migration completes; accesses
	// before it stall until then.
	ReadyAt sim.Time
	// LastMigrated is the time of the most recent H2D migration, the key of
	// the least-recently-migrated eviction order.
	LastMigrated sim.Time
	// Dirty marks device-side writes since migration.
	Dirty bool

	// prev/next chain the block into the residency manager's LRM list.
	prev, next BlockID
}

// Bytes returns the allocated payload size of the block.
func (b *Block) Bytes() int64 { return b.AllocatedPages * sim.PageSize }

// ResidentBytes returns the device memory the block currently occupies.
func (b *Block) ResidentBytes() int64 { return b.ResidentPages * sim.PageSize }

// Space is the unified virtual address space: a growable table of UM blocks
// plus a range allocator handing out page-aligned allocations, mirroring
// cudaMallocManaged.
type Space struct {
	alloc  *RangeAllocator
	blocks []Block
	// allocatedBytes tracks the total live UM allocation, bounded by host
	// memory (the backing store).
	allocatedBytes int64
	hostLimit      int64
}

// NewSpace returns an empty unified address space whose total allocation is
// bounded by hostLimit bytes (the CPU backing store capacity). A hostLimit
// of zero or less means unbounded.
func NewSpace(hostLimit int64) *Space {
	return &Space{alloc: NewRangeAllocator(), hostLimit: hostLimit}
}

// ErrHostExhausted is returned when a UM allocation would exceed the CPU
// backing store: the hard capacity wall of DeepUM (Table 3: "batch size that
// requires the peak memory usage to be almost the same as the total CPU
// memory size").
var ErrHostExhausted = fmt.Errorf("um: host backing store exhausted")

// Malloc allocates n bytes of unified memory, page aligned, and returns the
// base address. It extends the block table as the VA grows.
func (s *Space) Malloc(n int64) (Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("um: invalid allocation size %d", n)
	}
	rounded := roundUp(n, sim.PageSize)
	if s.hostLimit > 0 && s.allocatedBytes+rounded > s.hostLimit {
		return 0, ErrHostExhausted
	}
	base := s.alloc.Alloc(rounded)
	s.allocatedBytes += rounded
	s.cover(base, rounded, +1)
	return base, nil
}

// Free releases an allocation made by Malloc.
func (s *Space) Free(base Addr, n int64) {
	rounded := roundUp(n, sim.PageSize)
	s.alloc.Free(base, rounded)
	s.allocatedBytes -= rounded
	s.cover(base, rounded, -1)
}

// cover adjusts AllocatedPages of every block overlapped by [base, base+n).
func (s *Space) cover(base Addr, n int64, sign int64) {
	end := int64(base) + n
	for off := int64(base); off < end; {
		b := BlockID(off / sim.BlockSize)
		s.grow(b)
		blockEnd := (int64(b) + 1) * sim.BlockSize
		span := min64(end, blockEnd) - off
		s.blocks[b].AllocatedPages += sign * span / sim.PageSize
		if s.blocks[b].AllocatedPages < 0 {
			s.blocks[b].AllocatedPages = 0
		}
		off += span
	}
}

func (s *Space) grow(b BlockID) {
	for BlockID(len(s.blocks)) <= b {
		s.blocks = append(s.blocks, Block{prev: NoBlock, next: NoBlock})
	}
}

// Block returns the state of block b, growing the table if needed.
func (s *Space) Block(b BlockID) *Block {
	s.grow(b)
	return &s.blocks[b]
}

// NumBlocks returns the current extent of the block table.
func (s *Space) NumBlocks() int { return len(s.blocks) }

// AllocatedBytes returns the total live UM allocation.
func (s *Space) AllocatedBytes() int64 { return s.allocatedBytes }

// BlocksOf returns the IDs of all blocks overlapped by [base, base+n),
// in ascending address order.
func BlocksOf(base Addr, n int64) []BlockID {
	if n <= 0 {
		return nil
	}
	first := BlockOf(base)
	last := BlockOf(base + Addr(n-1))
	out := make([]BlockID, 0, last-first+1)
	for b := first; b <= last; b++ {
		out = append(out, b)
	}
	return out
}

// PagesIn returns how many pages of [base, base+n) fall inside block b.
func PagesIn(base Addr, n int64, b BlockID) int64 {
	lo := max64(int64(base), int64(b)*sim.BlockSize)
	hi := min64(int64(base)+n, (int64(b)+1)*sim.BlockSize)
	if hi <= lo {
		return 0
	}
	return (roundUp(hi, sim.PageSize) - roundDown(lo, sim.PageSize)) / sim.PageSize
}

func roundUp(n, to int64) int64   { return (n + to - 1) / to * to }
func roundDown(n, to int64) int64 { return n / to * to }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
