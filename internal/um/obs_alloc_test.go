package um

import (
	"testing"

	"deepum/internal/obs"
	"deepum/internal/sim"
)

// The observability contract for the fault handler: with no observer
// attached (Obs nil — the default), the instrumentation must add ZERO
// allocations to the hot path. Each emit site is a single pointer nil
// check; these tests pin that down so a future emit site that builds an
// event unconditionally fails CI instead of taxing every untraced run.

// TestHandleGroupsNilObserverZeroAlloc drives the two steady-state demand
// paths — replay of an already-resident block, and a full H2D migration of
// a populated block — and asserts 0 allocs/op with tracing disabled.
func TestHandleGroupsNilObserverZeroAlloc(t *testing.T) {
	h, s := newTestHandler(10)
	a, _ := s.Malloc(sim.BlockSize)
	b := BlockOf(a)
	s.Block(b).HostPopulated = true
	groups := []FaultGroup{{Block: b, Count: sim.PagesPerBlock}}
	now := h.HandleGroups(0, groups) // warm: block resident, maps stable

	if allocs := testing.AllocsPerRun(200, func() {
		now = h.HandleGroups(now, groups) // already resident: map-only replay
	}); allocs != 0 {
		t.Fatalf("resident-replay path: %v allocs/op with nil observer, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		h.Res.Remove(b) // force a re-migration without eviction pressure
		now = h.HandleGroups(now, groups)
	}); allocs != 0 {
		t.Fatalf("demand-migration path: %v allocs/op with nil observer, want 0", allocs)
	}
}

// BenchmarkHandleGroups measures the fault-handler demand-migration cycle
// with tracing off and on; compare ns/op and allocs/op between the two to
// see the tracing tax (off must report 0 allocs/op).
func BenchmarkHandleGroups(b *testing.B) {
	bench := func(b *testing.B, rec *obs.Recorder) {
		h, s := newTestHandler(10)
		h.Obs = rec
		a, _ := s.Malloc(sim.BlockSize)
		blk := BlockOf(a)
		s.Block(blk).HostPopulated = true
		groups := []FaultGroup{{Block: blk, Count: sim.PagesPerBlock}}
		now := h.HandleGroups(0, groups)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Res.Remove(blk)
			now = h.HandleGroups(now, groups)
		}
	}
	b.Run("observer=nil", func(b *testing.B) { bench(b, nil) })
	b.Run("observer=ring", func(b *testing.B) { bench(b, obs.NewRecorder(1<<16)) })
}
