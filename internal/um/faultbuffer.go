package um

import "deepum/internal/sim"

// FaultBuffer models the hardware circular queue in the GPU that accumulates
// faulted-access records (§2.3). The GPU can generate multiple faults
// concurrently and the buffer may contain several entries for the same page;
// the driver's preprocessing step removes duplicates and groups entries by
// UM block.
type FaultBuffer struct {
	entries  []Fault
	capacity int
	dropped  int64 // entries lost to overflow (the GPU would stall/retry)
	total    int64 // entries ever pushed
}

// DefaultFaultBufferCap matches the order of magnitude of Volta's replayable
// fault buffer.
const DefaultFaultBufferCap = 8192

// NewFaultBuffer returns an empty buffer with the given capacity; cap <= 0
// selects DefaultFaultBufferCap.
func NewFaultBuffer(capacity int) *FaultBuffer {
	if capacity <= 0 {
		capacity = DefaultFaultBufferCap
	}
	return &FaultBuffer{capacity: capacity}
}

// Push appends one faulted access. When the buffer is full the entry is
// counted as dropped: on real hardware the SM would be stalled and replay
// the access later, producing a new entry — the model's accounting treats
// the retried entry as part of the next batch.
func (f *FaultBuffer) Push(fault Fault) {
	f.total++
	if len(f.entries) >= f.capacity {
		f.dropped++
		return
	}
	f.entries = append(f.entries, fault)
}

// Drain removes and returns all buffered entries in arrival order.
func (f *FaultBuffer) Drain() []Fault {
	out := f.entries
	f.entries = nil
	return out
}

// Len returns the number of buffered entries.
func (f *FaultBuffer) Len() int { return len(f.entries) }

// Total returns the number of entries ever pushed, including dropped ones.
func (f *FaultBuffer) Total() int64 { return f.total }

// Dropped returns the number of entries lost to overflow.
func (f *FaultBuffer) Dropped() int64 { return f.dropped }

// Preprocess performs step 2 of the fault-handling pipeline: it removes
// duplicate page addresses and groups the faults by UM block, preserving
// first-occurrence order of blocks and, within a block, of pages.
func Preprocess(faults []Fault) []FaultGroup {
	seenPage := make(map[int64]struct{}, len(faults))
	index := make(map[BlockID]int)
	var groups []FaultGroup
	for _, f := range faults {
		if _, dup := seenPage[f.Page]; dup {
			continue
		}
		seenPage[f.Page] = struct{}{}
		b := BlockID(f.Page / sim.PagesPerBlock)
		i, ok := index[b]
		if !ok {
			i = len(groups)
			index[b] = i
			groups = append(groups, FaultGroup{Block: b})
		}
		groups[i].Pages = append(groups[i].Pages, f.Page)
		if f.Type == Write {
			groups[i].Write = true
		}
	}
	return groups
}

// FaultGroup is the unit the fault handler processes: all distinct faulted
// pages of one UM block. The engine constructs groups directly with Count
// set (a page list for millions of faults would be wasteful); Preprocess
// fills the explicit page list.
type FaultGroup struct {
	Block BlockID
	Pages []int64
	// Count is the number of distinct faulted pages when Pages is not
	// populated.
	Count int64
	Write bool
}

// PageCount returns the number of distinct faulted pages in the group.
func (g FaultGroup) PageCount() int64 {
	if len(g.Pages) > 0 {
		return int64(len(g.Pages))
	}
	if g.Count > 0 {
		return g.Count
	}
	return 1
}
