package um

import (
	"context"

	"deepum/internal/obs"
	"deepum/internal/sim"
)

// EvictionPolicy selects victim blocks when the fault handler (or the
// pre-evictor) needs device space. Implementations walk the residency
// manager's least-recently-migrated order; DeepUM's policy additionally
// skips blocks predicted for the next N kernels (§5.1).
type EvictionPolicy interface {
	// SelectVictims returns resident blocks to evict so that at least need
	// bytes become free. It must not return non-resident blocks. Returning
	// fewer bytes than requested makes the handler fail the migration
	// (device memory wedged) — callers size requests against Capacity.
	SelectVictims(r *Residency, need int64) []BlockID
}

// LRMPolicy is the stock NVIDIA eviction policy: evict pages that were least
// recently migrated to the GPU.
type LRMPolicy struct{}

// SwitchPolicy delegates victim selection to Base until UseFallback reports
// true, then to Fallback. The health controller's degradation ladder uses it
// to drop back to stock LRM at L3, where the driver's protected-set
// predictions are speculation the run no longer honors. The switch is
// evaluated per eviction cycle, so a recovering run resumes prediction-aware
// eviction without rebuilding the handler.
type SwitchPolicy struct {
	Base, Fallback EvictionPolicy
	UseFallback    func() bool
}

// SelectVictims implements EvictionPolicy.
func (p SwitchPolicy) SelectVictims(r *Residency, need int64) []BlockID {
	if p.UseFallback != nil && p.UseFallback() {
		return p.Fallback.SelectVictims(r, need)
	}
	return p.Base.SelectVictims(r, need)
}

// SelectVictims walks the LRM list from the oldest block.
func (LRMPolicy) SelectVictims(r *Residency, need int64) []BlockID {
	var victims []BlockID
	var freed int64
	r.WalkLRM(func(b BlockID) bool {
		victims = append(victims, b)
		freed += r.space.Block(b).ResidentBytes()
		return freed < need
	})
	return victims
}

// Invalidator decides whether a victim block's content is dead to the
// application (its PT block is inactive, §5.2) and can be dropped without a
// D2H copy. The zero-value NoInvalidate keeps every victim's data.
type Invalidator interface {
	CanInvalidate(BlockID) bool
}

// NoInvalidate is the Invalidator that never allows dropping a victim.
type NoInvalidate struct{}

// CanInvalidate always returns false.
func (NoInvalidate) CanInvalidate(BlockID) bool { return false }

// HandlerStats aggregates fault-handling work. Fault counts follow the
// paper's Table 5 accounting: one fault per distinct faulted page per
// handling cycle.
type HandlerStats struct {
	Batches        int64 // fault-handling cycles
	PageFaults     int64 // distinct faulted pages handled
	BlocksMigrated int64 // UM blocks populated on the device by the handler
	ZeroFills      int64 // blocks populated without a transfer (first touch)
	BlocksEvicted  int64 // victims transferred D2H
	BlocksDropped  int64 // victims invalidated (no transfer)
	EvictStall     sim.Duration
	TransferStall  sim.Duration
	Overhead       sim.Duration

	// TransferRetries counts demand transfers re-attempted after an
	// injected transient link failure; RetryStall is the extra time the
	// failed attempts and their exponential backoff cost. Both stay zero
	// without fault injection.
	TransferRetries int64
	RetryStall      sim.Duration
}

// Handler implements the NVIDIA page-fault handling pipeline of Figure 3:
// (1) fetch faults from the buffer, (2) preprocess (dedup, group per UM
// block), then per faulted UM block (3) check space, (4) evict if needed,
// (5) populate, (6) transfer, (7) map, (8) loop, and finally (9) replay.
//
// A faulted block whose host side is unpopulated (first touch of a fresh
// allocation) is zero-filled on the device: full handling cost, no
// transfer. On-demand migration moves only the faulted pages; whole-block
// movement is the prefetcher's job.
type Handler struct {
	Params      sim.Params
	Space       *Space
	Res         *Residency
	Link        *sim.Duplex
	Policy      EvictionPolicy
	Invalidator Invalidator

	// DensityPrefetch enables the NVIDIA driver's tree-based neighborhood
	// heuristic: once a fault batch touches a block densely enough, the
	// driver migrates the whole block in one coalesced transfer instead of
	// streaming faulted chunks. An ablation point between naive UM and
	// DeepUM (which achieves the same coalescing by prediction, ahead of
	// the fault).
	DensityPrefetch bool

	// OnMigrated, if set, is called for each block the handler maps onto the
	// device (the DeepUM correlator records faulted blocks from here).
	OnMigrated func(b BlockID, at sim.Time)
	// OnBatch, if set, is called once per fault-handling cycle with its
	// interrupt-to-replay window (the health controller's fault-batch
	// latency feed).
	OnBatch func(start, end sim.Time, blocks int)
	// OnTransferRetry, if set, is called for each demand-transfer attempt
	// that transiently failed and is being retried (the health controller's
	// link-failure feed; demand retries signal link sickness just as hard
	// as prefetch failures do).
	OnTransferRetry func(at sim.Time)
	// OnEvicted, if set, is called for each victim (dropped or transferred).
	OnEvicted func(b BlockID, invalidated bool)

	// Ctx, if set, lets a supervisor interrupt fault handling between block
	// groups: once the context is done, HandleGroups finishes the group in
	// flight (demand work already started must drain — a half-migrated block
	// would violate the served invariant) and returns without starting the
	// next. A nil Ctx never interrupts.
	Ctx context.Context

	// Obs, if set, receives a fault-batch span per handling cycle and an
	// evict event per critical-path victim. Nil (the default) costs one
	// branch per cycle and per victim.
	Obs *obs.Recorder

	Stats HandlerStats
}

// Handle runs one fault-handling cycle for the buffered faults, starting at
// time now (when the interrupt is raised). It returns the time the replay
// signal is delivered, i.e. when the GPU may re-execute the faulted
// accesses. An empty batch returns now.
func (h *Handler) Handle(now sim.Time, faults []Fault) sim.Time {
	if len(faults) == 0 {
		return now
	}
	groups := Preprocess(faults)
	return h.HandleGroups(now, groups)
}

// HandleGroups is Handle for pre-grouped faults.
func (h *Handler) HandleGroups(now sim.Time, groups []FaultGroup) sim.Time {
	if len(groups) == 0 {
		return now
	}
	h.Stats.Batches++
	pagesBefore := h.Stats.PageFaults
	t := now.Add(h.Params.FaultBatchOverhead) // steps 1-2
	h.Stats.Overhead += h.Params.FaultBatchOverhead

	for _, g := range groups {
		if h.Ctx != nil && h.Ctx.Err() != nil {
			// Cancelled: the groups already handled are fully served (demand
			// work drains); the rest are abandoned — on a real GPU their
			// faults simply replay into a run that is being torn down. The
			// engine skips the served-invariant audit for an interrupted
			// cycle.
			break
		}
		pages := g.PageCount()
		h.Stats.PageFaults += pages
		blk := h.Space.Block(g.Block)
		if pages > blk.AllocatedPages {
			pages = blk.AllocatedPages
		}
		if blk.Resident {
			// Another entry of the same batch (or an in-flight prefetch)
			// already migrated the block: wait for it to be ready, map only.
			t = sim.Max(t, blk.ReadyAt)
			h.Res.Touch(g.Block, g.Write)
			continue
		}
		t = t.Add(h.Params.FaultBlockOverhead) // steps 3, 5, 7 bookkeeping
		h.Stats.Overhead += h.Params.FaultBlockOverhead

		if blk.AllocatedPages == 0 {
			// Faulted access to an unallocated region; map a zero page.
			continue
		}
		if h.DensityPrefetch && blk.HostPopulated && pages*2 >= blk.AllocatedPages {
			// Dense fault: the driver's neighborhood heuristic migrates the
			// whole block in one coalesced transfer.
			pages = blk.AllocatedPages
		}
		need := pages * sim.PageSize
		// Step 4: evict synchronously on the critical path if no space.
		if h.Res.Free() < need {
			t = h.evict(t, need)
		}
		// Step 6: transfer the faulted pages — or zero-fill a first touch.
		// On-demand migration is chunked: the GPU only faults on pages as
		// threads reach them, so a block streams in FaultChunkPages at a
		// time, paying a handling round trip and a latency-dominated small
		// transfer per chunk. (Prefetches move whole blocks in one shot.)
		if blk.HostPopulated {
			chunk := h.Params.FaultChunkPages
			if chunk <= 0 {
				chunk = pages
			}
			if h.DensityPrefetch && pages == blk.AllocatedPages {
				chunk = pages // one coalesced transfer
			}
			for moved := int64(0); moved < pages; moved += chunk {
				n := chunk
				if pages-moved < n {
					n = pages - moved
				}
				t = t.Add(h.Params.FaultChunkOverhead)
				h.Stats.Overhead += h.Params.FaultChunkOverhead
				end := h.transfer(t, n*sim.PageSize, sim.HostToDevice)
				h.Stats.TransferStall += end.Sub(t)
				t = end
			}
		} else {
			h.Stats.ZeroFills++
		}
		h.Res.Insert(g.Block, pages, t, t)
		h.Res.Touch(g.Block, g.Write)
		h.Stats.BlocksMigrated++
		if h.OnMigrated != nil {
			h.OnMigrated(g.Block, t)
		}
	}
	// Step 9: replay.
	t = t.Add(h.Params.ReplayLatency)
	h.Stats.Overhead += h.Params.ReplayLatency
	if h.Obs != nil {
		h.Obs.Span(obs.KindFaultBatch, obs.TrackFaultHandler, int64(now), int64(t),
			"", 0, h.Stats.PageFaults-pagesBefore, int64(len(groups)))
	}
	if h.OnBatch != nil {
		h.OnBatch(now, t, len(groups))
	}
	return t
}

// evict synchronously frees at least need bytes starting at time t and
// returns the time eviction completes. Victims whose content is invalidated
// are dropped without a transfer; the rest are copied D2H on the link. The
// handler waits for the writeback before reusing the space, which is why
// eviction sits on the critical path (§5.1).
func (h *Handler) evict(t sim.Time, need int64) sim.Time {
	start := t
	for h.Res.Free() < need {
		victims := h.Policy.SelectVictims(h.Res, need-h.Res.Free())
		if len(victims) == 0 {
			break // nothing evictable; the transfer will be short on space
		}
		for _, v := range victims {
			t = t.Add(h.Params.EvictBlockOverhead)
			vb := h.Space.Block(v)
			if h.Invalidator != nil && h.Invalidator.CanInvalidate(v) {
				h.Res.Remove(v)
				h.Stats.BlocksDropped++
				if h.Obs != nil {
					h.Obs.Instant(obs.KindEvict, obs.TrackFaultHandler, int64(t),
						"", int64(v), 0, obs.EvictCritical|obs.EvictInvalidated)
				}
				if h.OnEvicted != nil {
					h.OnEvicted(v, true)
				}
				continue
			}
			wb := vb.ResidentBytes()
			t = h.transfer(t, wb, sim.DeviceToHost)
			vb.HostPopulated = true
			h.Res.Remove(v)
			h.Stats.BlocksEvicted++
			if h.Obs != nil {
				h.Obs.Instant(obs.KindEvict, obs.TrackFaultHandler, int64(t),
					"", int64(v), wb, obs.EvictCritical)
			}
			if h.OnEvicted != nil {
				h.OnEvicted(v, false)
			}
		}
	}
	h.Stats.EvictStall += t.Sub(start)
	return t
}

// transfer moves n bytes with demand priority starting at t and returns the
// completion time. Under fault injection a transfer can transiently fail;
// the demand path cannot give up — the GPU is stalled on this data — so it
// retries with bounded exponential backoff. The injector bounds consecutive
// failures, making the attempt cap a defensive backstop past which the
// transfer is taken as delivered (a real driver would reset the link).
func (h *Handler) transfer(t sim.Time, n int64, dir sim.Direction) sim.Time {
	const maxDemandRetries = 16
	for attempt := 0; ; attempt++ {
		_, end, ok := h.Link.ReserveChecked(t, n, dir)
		if ok || attempt >= maxDemandRetries {
			return end
		}
		h.Stats.TransferRetries++
		if h.OnTransferRetry != nil {
			h.OnTransferRetry(end)
		}
		backoff := retryBackoff(attempt)
		h.Stats.RetryStall += end.Sub(t) + backoff
		t = end.Add(backoff)
	}
}

// retryBackoff is the bounded exponential backoff before retry attempt
// (0-indexed): 10us doubling to a 640us ceiling. Mirrors the migration
// engine's prefetch backoff (internal/chaos keeps the shared constants; um
// cannot import it without a cycle).
func retryBackoff(attempt int) sim.Duration {
	return sim.Duration(10_000) << min(attempt, 6)
}
