package supervisor

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"deepum/internal/store"
)

// TestStoreGCReclaimsFinishedCheckpoints: with StoreGCThreshold set, the
// supervisor compacts the checkpoint store in the background once finished
// runs' checkpoints push the garbage ratio past the threshold — and the
// live checkpoint of a still-running run survives the compaction.
func TestStoreGCReclaimsFinishedCheckpoints(t *testing.T) {
	st, _, err := store.Open(filepath.Join(t.TempDir(), "ck.store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	hungCk := []byte("ck-hang-live")
	hung := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		if spec.Seed == 1 {
			progress(hungCk)
			close(hung)
			<-ctx.Done()
			return Outcome{Status: string(StateCancelled)}, nil
		}
		progress([]byte(fmt.Sprintf("ck-%d", spec.Seed)))
		return Outcome{Status: string(StateCompleted)}, nil
	})
	s, err := New(Config{
		Runner:           runner,
		Workers:          5,
		QueueDepth:       8,
		Checkpoints:      st,
		StoreGCThreshold: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	hangID, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-hung
	for seed := int64(2); seed <= 5; seed++ {
		id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	// Four of five keys are now garbage (0.8 > 0.4); the background GC
	// kicked by the last finalize must compact down to the live key.
	liveKey := store.HashBytes(hungCk)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if keys := st.Keys(); len(keys) == 1 && st.Has(liveKey) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store not compacted to the live key: %d key(s) remain, stats %+v",
				len(st.Keys()), s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	stats := s.Stats()
	if stats.StoreGCs < 1 || stats.StoreGCReclaimed <= 0 {
		t.Fatalf("StoreGCs %d reclaimed %d, want at least one reclaiming compaction",
			stats.StoreGCs, stats.StoreGCReclaimed)
	}
	if err := s.Cancel(hangID); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
}

// TestGarbageRatio pins the ratio arithmetic on a store populated by hand.
func TestGarbageRatio(t *testing.T) {
	st, _, err := store.Open(filepath.Join(t.TempDir(), "ck.store"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := GarbageRatio(st, nil); got != 0 {
		t.Fatalf("empty store ratio = %v, want 0", got)
	}
	var keys []store.Key
	for i := 0; i < 4; i++ {
		k, err := st.Put([]byte(fmt.Sprintf("blob-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	live := map[store.Key]bool{keys[0]: true}
	if got := GarbageRatio(st, live); got != 0.75 {
		t.Fatalf("ratio = %v, want 0.75 (3 of 4 unreferenced)", got)
	}
}
