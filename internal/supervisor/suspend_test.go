package supervisor

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepum/internal/arbiter"
)

// Deterministic hash-fold stub shared by the suspend tests: the checksum of
// an uninterrupted execution is a pure function of (seed, iterations), so a
// suspended-and-resumed run has a solo oracle to be bit-identical to.

func suspendFold(h uint64, seed int64, iter int) uint64 {
	h ^= uint64(iter)*0x9E3779B97F4A7C15 + uint64(seed)
	return h * 0x100000001b3
}

func suspendExpect(seed int64, iters int) uint64 {
	h := 0xcbf29ce484222325 ^ uint64(seed)*0x100000001b3
	for i := 0; i < iters; i++ {
		h = suspendFold(h, seed, i)
	}
	return h
}

type suspendCkpt struct {
	Iter int    `json:"iter"`
	Hash uint64 `json:"hash"`
}

// suspendableRunner folds iterations, checkpointing each one. A run whose
// resume state is empty blocks at blockAt after signaling ready (closed
// once), waiting for cancellation; the partial outcome carries its complete
// state, so a resumed execution is bit-identical by construction. A resumed
// run finishes the remaining iterations immediately.
func suspendableRunner(blockAt int, ready map[int64]chan struct{}) Runner {
	var once sync.Map
	return RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		st := suspendCkpt{Hash: 0xcbf29ce484222325 ^ uint64(spec.Seed)*0x100000001b3}
		if len(resume) > 0 {
			if err := json.Unmarshal(resume, &st); err != nil {
				return Outcome{}, err
			}
		}
		fresh := len(resume) == 0
		for st.Iter < spec.Iterations {
			if fresh && st.Iter == blockAt {
				if ch := ready[spec.Seed]; ch != nil {
					if _, dup := once.LoadOrStore(spec.Seed, true); !dup {
						close(ch)
					}
				}
				<-ctx.Done()
				b, err := json.Marshal(st)
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{
					Status:         string(StateCancelled),
					Iterations:     st.Iter,
					AccessChecksum: st.Hash,
					Checkpoint:     b,
				}, nil
			}
			st.Hash = suspendFold(st.Hash, spec.Seed, st.Iter)
			st.Iter++
			b, err := json.Marshal(st)
			if err != nil {
				return Outcome{}, err
			}
			if st.Iter < spec.Iterations {
				progress(b)
			}
		}
		return Outcome{
			Status:         string(StateCompleted),
			Iterations:     st.Iter,
			AccessChecksum: st.Hash,
		}, nil
	})
}

// TestSuspendResumeEquivalence mirrors TestKillRestartEquivalence for the
// suspend path: a run checkpointed out of execution mid-flight and resumed
// must complete with the checksum of an uninterrupted solo execution, one
// extra attempt, and one recorded suspend cycle. Without an arbiter gating
// headroom, the resumption is automatic.
func TestSuspendResumeEquivalence(t *testing.T) {
	const iters = 6
	ready := map[int64]chan struct{}{7: make(chan struct{})}
	s, err := New(Config{
		Runner:      suspendableRunner(3, ready),
		Workers:     1,
		QueueDepth:  4,
		JournalPath: filepath.Join(t.TempDir(), "runs.journal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: 7, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	<-ready[7]
	if err := s.Suspend(id); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted {
		t.Fatalf("state after suspend/resume = %s (%s)", info.State, info.Reason)
	}
	if want := suspendExpect(7, iters); info.Outcome.AccessChecksum != want {
		t.Fatalf("checksum %016x, want solo oracle %016x", info.Outcome.AccessChecksum, want)
	}
	if info.Suspends != 1 || info.Attempts != 2 || !info.Resumed {
		t.Fatalf("suspends %d attempts %d resumed %v, want 1/2/true", info.Suspends, info.Attempts, info.Resumed)
	}
	st := s.Stats()
	if st.Suspends != 1 || st.Resumes != 1 {
		t.Fatalf("stats suspends/resumes = %d/%d, want 1/1", st.Suspends, st.Resumes)
	}
	drain(t, s)
}

// TestSuspendedRunSurvivesKillRestart: a run that is StateSuspended when
// the supervisor is kill-9'd is journaled as a suspension record, which
// replay folds exactly like an interruption — the restarted supervisor
// re-queues it and resumes from the suspension checkpoint, bit-identical.
func TestSuspendedRunSurvivesKillRestart(t *testing.T) {
	const iters = 6
	path := filepath.Join(t.TempDir(), "runs.journal")
	// Oversubscribed pair: the hanging run's grant (80 of 100) leaves no
	// resume headroom (80 + 25 floor > 100), so the suspended victim stays
	// suspended until the kill.
	ready := map[int64]chan struct{}{1: make(chan struct{}), 2: make(chan struct{})}
	s1, err := New(Config{
		Runner:          suspendableRunner(3, ready),
		Estimate:        func(RunSpec) (int64, error) { return 80, nil },
		Workers:         2,
		QueueDepth:      4,
		JournalPath:     path,
		GPUMemoryBudget: 100,
		Oversubscribe:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int64]uint64{}
	for seed := int64(1); seed <= 2; seed++ {
		id, err := s1.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: seed, Iterations: iters})
		if err != nil {
			t.Fatal(err)
		}
		ids[seed] = id
	}
	<-ready[1]
	<-ready[2]
	if err := s1.Suspend(ids[2]); err != nil {
		t.Fatalf("suspend: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := s1.Get(ids[2])
		if err != nil {
			t.Fatal(err)
		}
		if info.State == StateSuspended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run 2 never reached suspended: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	s1.Kill()

	var mu sync.Mutex
	executed := map[int64][]byte{}
	recorder := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		mu.Lock()
		if _, dup := executed[spec.Seed]; dup {
			t.Errorf("run seed %d executed twice after restart", spec.Seed)
		}
		executed[spec.Seed] = resume
		mu.Unlock()
		st := suspendCkpt{Hash: 0xcbf29ce484222325 ^ uint64(spec.Seed)*0x100000001b3}
		if len(resume) > 0 {
			if err := json.Unmarshal(resume, &st); err != nil {
				return Outcome{}, err
			}
		}
		for st.Iter < spec.Iterations {
			st.Hash = suspendFold(st.Hash, spec.Seed, st.Iter)
			st.Iter++
		}
		return Outcome{Status: string(StateCompleted), Iterations: st.Iter, AccessChecksum: st.Hash}, nil
	})
	s2, err := New(Config{Runner: recorder, Workers: 2, QueueDepth: 4, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Recovered != 2 {
		t.Fatalf("recovered %d runs, want 2 (1 interrupted + 1 suspended)", st.Recovered)
	}
	for seed := int64(1); seed <= 2; seed++ {
		info, err := s2.Wait(ids[seed])
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateCompleted || !info.Resumed {
			t.Fatalf("replayed run %d: state %s resumed %v", seed, info.State, info.Resumed)
		}
		if want := suspendExpect(seed, iters); info.Outcome.AccessChecksum != want {
			t.Fatalf("replayed run %d checksum %016x, want %016x", seed, info.Outcome.AccessChecksum, want)
		}
		mu.Lock()
		resume := executed[seed]
		mu.Unlock()
		var ck suspendCkpt
		if err := json.Unmarshal(resume, &ck); err != nil || ck.Iter != 3 {
			t.Fatalf("run %d resumed from %q (iter %d), want the iteration-3 checkpoint", seed, resume, ck.Iter)
		}
	}
	// The suspension survived the journal round-trip into the run snapshot.
	if info, _ := s2.Get(ids[2]); info.Suspends != 1 {
		t.Fatalf("suspended run's replayed Suspends = %d, want 1", info.Suspends)
	}
	drain(t, s2)
}

// TestSuspendResumeAPIErrors pins the typed errors of the suspend/resume
// surface.
func TestSuspendResumeAPIErrors(t *testing.T) {
	s, err := New(Config{Runner: instantRunner(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var nf *NotFoundError
	if err := s.Suspend(999); !errors.As(err, &nf) {
		t.Fatalf("Suspend(unknown) = %v, want NotFoundError", err)
	}
	if err := s.Resume(999); !errors.As(err, &nf) {
		t.Fatalf("Resume(unknown) = %v, want NotFoundError", err)
	}
	id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Suspend(id); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Suspend(terminal) = %v, want ErrNotRunning", err)
	}
	if err := s.Resume(id); !errors.Is(err, ErrNotSuspended) {
		t.Fatalf("Resume(terminal) = %v, want ErrNotSuspended", err)
	}
	drain(t, s)
}

// TestResumeForcesGatedRun: Resume is the operator override — it must
// restart a suspended run even while the arbiter reports no headroom.
func TestResumeForcesGatedRun(t *testing.T) {
	ready := map[int64]chan struct{}{1: make(chan struct{}), 2: make(chan struct{})}
	s, err := New(Config{
		Runner:          suspendableRunner(3, ready),
		Estimate:        func(RunSpec) (int64, error) { return 80, nil },
		Workers:         2,
		QueueDepth:      4,
		GPUMemoryBudget: 100,
		Oversubscribe:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids [3]uint64
	for seed := int64(1); seed <= 2; seed++ {
		id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: seed, Iterations: 6})
		if err != nil {
			t.Fatal(err)
		}
		ids[seed] = id
	}
	<-ready[1]
	<-ready[2]
	if err := s.Suspend(ids[2]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info, _ := s.Get(ids[2]); info.State == StateSuspended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run 2 never reached suspended")
		}
		time.Sleep(time.Millisecond)
	}
	// Run 1 still holds 80 of 100: no organic headroom. The override must
	// resume run 2 anyway, and it completes on the second worker.
	if err := s.Resume(ids[2]); err != nil {
		t.Fatalf("forced resume: %v", err)
	}
	info, err := s.Wait(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted || info.Suspends != 1 {
		t.Fatalf("forced-resumed run: state %s suspends %d", info.State, info.Suspends)
	}
	if want := suspendExpect(2, 6); info.Outcome.AccessChecksum != want {
		t.Fatalf("forced-resumed checksum %016x, want %016x", info.Outcome.AccessChecksum, want)
	}
	// Unblock run 1 and wind down.
	if err := s.Cancel(ids[1]); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
}

// TestArbiterDrivenSuspendCompletes is the in-package miniature of the
// contention-storm soak: six runs demanding 2.4x the budget together, all
// admitted, with the arbiter's escalation — revocation first, then
// suspend-to-checkpoint — forced by sustained pressure; every run must
// complete bit-identical to its solo oracle.
func TestArbiterDrivenSuspendCompletes(t *testing.T) {
	const (
		budget = int64(1000)
		demand = 400
		runs   = 6
		iters  = 150
	)
	pace := time.Millisecond
	runner := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		st := suspendCkpt{Hash: 0xcbf29ce484222325 ^ uint64(spec.Seed)*0x100000001b3}
		if len(resume) > 0 {
			if err := json.Unmarshal(resume, &st); err != nil {
				return Outcome{}, err
			}
		}
		tick := time.NewTicker(pace)
		defer tick.Stop()
		for st.Iter < spec.Iterations {
			select {
			case <-ctx.Done():
				b, err := json.Marshal(st)
				if err != nil {
					return Outcome{}, err
				}
				return Outcome{Status: string(StateCancelled), Iterations: st.Iter,
					AccessChecksum: st.Hash, Checkpoint: b}, nil
			case <-tick.C:
			}
			st.Hash = suspendFold(st.Hash, spec.Seed, st.Iter)
			st.Iter++
			if st.Iter%10 == 0 && st.Iter < spec.Iterations {
				b, err := json.Marshal(st)
				if err != nil {
					return Outcome{}, err
				}
				progress(b)
			}
		}
		return Outcome{Status: string(StateCompleted), Iterations: st.Iter, AccessChecksum: st.Hash}, nil
	})
	s, err := New(Config{
		Runner:          runner,
		Estimate:        func(RunSpec) (int64, error) { return demand, nil },
		Workers:         runs,
		QueueDepth:      runs,
		GPUMemoryBudget: budget,
		Oversubscribe:   true,
		Arbiter: arbiter.Options{
			HalfLife: (10 * time.Millisecond).Nanoseconds(),
			Sustain:  (30 * time.Millisecond).Nanoseconds(),
		},
		ArbiterTick: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 0, runs)
	for i := 0; i < runs; i++ {
		id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: int64(i + 1), Iterations: iters})
		if err != nil {
			t.Fatalf("submit %d: %v (oversubscribed admission must not hard-reject an individually-fitting run)", i, err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		info, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateCompleted {
			t.Fatalf("run %d ended %s (%s)", id, info.State, info.Reason)
		}
		if want := suspendExpect(int64(i+1), iters); info.Outcome.AccessChecksum != want {
			t.Fatalf("run %d checksum %016x, want solo oracle %016x", id, info.Outcome.AccessChecksum, want)
		}
	}
	st := s.Stats()
	if st.Suspends < 1 || st.Resumes < 1 {
		t.Fatalf("suspends/resumes = %d/%d; sustained 2.4x pressure must force at least one cycle", st.Suspends, st.Resumes)
	}
	if st.Arbiter.Revocations < 1 {
		t.Fatal("no burst revocation recorded; revocation must precede suspension")
	}
	drain(t, s)
}
