package supervisor

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"deepum/internal/chaos"
)

// TestSupervisorSoak drives >= 8 concurrent runs through the pool under
// the worker-panic chaos scenario for a sustained window, exercising every
// supervision path at once: admission backpressure, quota churn, watchdog
// escalation on deliberately-hung runs, panic recovery, journal appends,
// and a final graceful drain. It then asserts zero goroutine leaks.
//
// The window defaults to 2s so `go test ./...` stays quick; the
// supervisor-soak CI job sets DEEPUM_SOAK_SECONDS=30 and runs it under
// -race.
func TestSupervisorSoak(t *testing.T) {
	dur := 2 * time.Second
	if env := os.Getenv("DEEPUM_SOAK_SECONDS"); env != "" {
		secs, err := strconv.Atoi(env)
		if err != nil || secs <= 0 {
			t.Fatalf("DEEPUM_SOAK_SECONDS = %q: want a positive integer", env)
		}
		dur = time.Duration(secs) * time.Second
	}
	before := runtime.NumGoroutine()

	// The simulated run: heartbeats and checkpoints while "training";
	// every 7th seed hangs silently so the watchdog has real work.
	runner := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		if spec.Seed%7 == 0 {
			<-ctx.Done() // hung: no heartbeat, watchdog must kill it
			return Outcome{Status: string(StateCancelled)}, nil
		}
		steps := 2 + int(spec.Seed%5)
		for i := 0; i < steps; i++ {
			select {
			case <-ctx.Done():
				return Outcome{Status: string(StateCancelled)}, nil
			case <-time.After(time.Duration(1+spec.Seed%3) * time.Millisecond):
			}
			progress([]byte(fmt.Sprintf("ck-%d-%d", spec.Seed, i)))
		}
		return Outcome{Status: string(StateCompleted), Iterations: steps}, nil
	})

	sc, err := chaos.SupervisorScenarioByName("worker-panic")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Runner:          runner,
		Workers:         8,
		QueueDepth:      32,
		GPUMemoryBudget: 1 << 30,
		WatchdogTimeout: 100 * time.Millisecond,
		JournalPath:     filepath.Join(t.TempDir(), "soak.journal"),
		Chaos:           sc,
		ChaosSeed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}

	var submitted, backpressured int
	deadline := time.Now().Add(dur)
	for seed := int64(0); time.Now().Before(deadline); seed++ {
		_, err := s.Submit(RunSpec{
			Model:        "bert-base",
			Batch:        8,
			Iterations:   4,
			Seed:         seed,
			MemoryDemand: 1 << 20,
		})
		switch {
		case err == nil:
			submitted++
		default:
			var qf *QueueFullError
			var q *QuotaError
			if !errors.As(err, &qf) && !errors.As(err, &q) {
				t.Fatalf("soak submission %d: untyped rejection %v", seed, err)
			}
			backpressured++
			time.Sleep(2 * time.Millisecond) // respect the backpressure
		}
	}
	t.Logf("soak: %d submitted, %d backpressured over %v", submitted, backpressured, dur)
	if submitted < 8 {
		t.Fatalf("soak admitted only %d runs; want >= 8 concurrent-capable load", submitted)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("soak drain: %v", err)
	}

	var completed, cancelled, failed int
	for _, info := range s.List() {
		switch info.State {
		case StateCompleted:
			completed++
		case StateCancelled:
			cancelled++
		case StateFailed:
			failed++
		default:
			t.Fatalf("run %d ended non-terminal: %s", info.ID, info.State)
		}
	}
	if completed == 0 || failed == 0 {
		t.Fatalf("soak mix: %d completed / %d cancelled / %d failed — want completions and chaos-panic failures", completed, cancelled, failed)
	}
	if st := s.Stats(); st.CommittedBytes != 0 {
		t.Fatalf("soak leaked %d quota bytes", st.CommittedBytes)
	}

	// Zero goroutine leaks after drain: the pool, watchdogs, and runner
	// goroutines must all be gone. Allow the count to settle.
	leakDeadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across soak: %d before, %d after drain", before, runtime.NumGoroutine())
}
