package supervisor

import (
	"fmt"

	"deepum/internal/store"
)

// Reference-counted checkpoint-store garbage collection. The store is
// append-only and content-addressed, so superseded checkpoints and the
// checkpoints of finished runs accumulate as garbage until something calls
// Compact with a liveness predicate. The supervisor derives that predicate
// from run retention: a key is live iff it is (or hashes to) the latest
// resume state of a non-terminal run — queued, running, or suspended.
// Terminal runs never resume, so their checkpoints are reclaimable.

// LiveCheckpointKeys returns the set of store keys any non-terminal run on
// this supervisor may still resume from. Inline resume payloads are hashed
// to the key their blob deduplicated into (content addressing makes the
// mapping exact). A federation unions these sets across its live shards
// before compacting a shared store.
func (s *Supervisor) LiveCheckpointKeys() map[store.Key]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := map[store.Key]bool{}
	for _, r := range s.runs {
		if r.info.State.Terminal() || len(r.resume) == 0 {
			continue
		}
		if k, ok := store.DecodeRef(r.resume); ok {
			live[k] = true
		} else {
			live[store.HashBytes(r.resume)] = true
		}
	}
	return live
}

// GarbageRatio reports the fraction of keys in st that live does not
// reference (0 for an empty store).
func GarbageRatio(st *store.Store, live map[store.Key]bool) float64 {
	keys := st.Keys()
	if len(keys) == 0 {
		return 0
	}
	dead := 0
	for _, k := range keys {
		if !live[k] {
			dead++
		}
	}
	return float64(dead) / float64(len(keys))
}

// maybeStoreGC kicks a background compaction when the garbage ratio
// exceeds Config.StoreGCThreshold. At most one compaction runs at a time;
// callers may hold mu (the goroutine takes its own locks). Only wired when
// this supervisor solely owns the store (see Config.StoreGCThreshold).
func (s *Supervisor) maybeStoreGC() {
	if s.cfg.Checkpoints == nil || s.cfg.StoreGCThreshold <= 0 {
		return
	}
	if !s.gcBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.gcBusy.Store(false)
		live := s.LiveCheckpointKeys()
		if GarbageRatio(s.cfg.Checkpoints, live) <= s.cfg.StoreGCThreshold {
			return
		}
		st, err := s.cfg.Checkpoints.Compact(func(k store.Key) bool { return live[k] })
		if err != nil {
			// Compaction failure never loses data (the old file stays the
			// truth); surface it in the transition log and move on.
			s.mu.Lock()
			s.record("", "", fmt.Sprintf("store gc failed: %v", err))
			s.mu.Unlock()
			return
		}
		s.gcRuns.Add(1)
		if d := st.BytesBefore - st.BytesAfter; d > 0 {
			s.gcReclaimed.Add(d)
		}
	}()
}
