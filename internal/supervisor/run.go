package supervisor

import (
	"context"
	"errors"
	"fmt"
	"time"

	"deepum/internal/admission"
	"deepum/internal/health"
)

// RunSpec describes one training run submitted to the supervisor. It is
// engine-agnostic on purpose — the supervisor schedules and supervises;
// the Runner interprets the spec (the deepum package wires Train in) — and
// JSON-serializable because it is journaled verbatim and carried over the
// deepum-serve HTTP API.
type RunSpec struct {
	Model   string `json:"model"`
	Dataset string `json:"dataset,omitempty"`
	Batch   int64  `json:"batch"`
	// System names the memory-management system; empty means DeepUM.
	System string `json:"system,omitempty"`
	// Policy names the prefetch policy for DeepUM runs; empty selects the
	// default (correlation). Serving layers validate it at admission so an
	// unknown name is a typed client error, never a failed run.
	Policy string `json:"policy,omitempty"`
	// Scale divides model and machine sizes (0 = runner default).
	Scale      int64 `json:"scale,omitempty"`
	Iterations int   `json:"iterations,omitempty"`
	Warmup     int   `json:"warmup,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	// Chaos and ChaosSeed name an in-run fault-injection scenario.
	Chaos     string `json:"chaos,omitempty"`
	ChaosSeed int64  `json:"chaos_seed,omitempty"`
	// Health enables the in-run closed-loop health controller (degradation
	// ladder); the run's ladder level surfaces in RunInfo.HealthLevel and
	// the supervisor's health metrics.
	Health bool `json:"health,omitempty"`
	// CheckpointEvery asks the runner to surface warm-state checkpoints
	// every so many measured iterations (0 = only at run end). Mid-run
	// checkpoints are what journal replay resumes from after a kill.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// MemoryDemand is the simulated GPU bytes this run charges against the
	// supervisor's budget; 0 lets Config.Estimate fill it at admission.
	MemoryDemand int64 `json:"memory_demand,omitempty"`
	// Priority is the run's arbiter priority class (higher = more
	// important; 0 is the default class). Under oversubscription the
	// arbiter picks revocation and suspension victims lowest-priority
	// first. Journaled with the spec, so priority survives restarts and
	// federation handoffs.
	Priority int `json:"priority,omitempty"`
	// Timeout overrides Config.WatchdogTimeout for this run (wall clock;
	// 0 inherits the supervisor default).
	Timeout time.Duration `json:"timeout,omitempty"`
}

// Outcome is what a Runner reports for a finished (or interrupted) run.
type Outcome struct {
	// Status is the terminal run status: completed, cancelled,
	// deadline-exceeded, degraded, or failed.
	Status string `json:"status"`
	// Iterations counts completed measured iterations across all chunks.
	Iterations int `json:"iterations"`
	// IterationTime is the mean measured iteration time (virtual).
	IterationTime time.Duration `json:"iteration_time_ns"`
	// FaultsPerIteration is the mean page-fault count per iteration.
	FaultsPerIteration int64 `json:"faults_per_iteration,omitempty"`
	// AccessChecksum fingerprints the run's ordered memory-access stream
	// (engine Result.AccessChecksum; for chunked runs, an order-sensitive
	// fold of the per-chunk checksums). It is the bit-identity witness the
	// failover-equivalence tests compare: an adopted, resumed run must
	// reproduce the checksum of its uninterrupted execution.
	AccessChecksum uint64 `json:"access_checksum,omitempty"`
	// Error carries the failure message for failed runs.
	Error string `json:"error,omitempty"`
	// Health is the run's degradation-ladder summary when the spec enabled
	// the health controller (nil otherwise).
	Health *health.Report `json:"health,omitempty"`
	// Checkpoint is the run's final warm state, if the runner produced
	// one. Journaled as a checkpoint record, never inlined in JSON.
	Checkpoint []byte `json:"-"`
}

// Runner executes one run. Implementations must honor ctx — the
// supervisor's watchdog, Cancel API, and drain escalation all stop a run
// by cancelling it — and may call progress to report liveness (nil
// checkpoint) or durable warm state (non-nil checkpoint bytes, which the
// supervisor journals so a killed-and-restarted supervisor can resume the
// run from there).
type Runner interface {
	Run(ctx context.Context, spec RunSpec, resume []byte, progress func(checkpoint []byte)) (Outcome, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
	return f(ctx, spec, resume, progress)
}

// LiveRunner is an optional Runner extension: runners that can stream the
// in-run health controller's ladder level implement it, and the supervisor
// mirrors the level into RunInfo.HealthLevel and the deepum_health_level /
// deepum_health_transitions_total metric family while the run is live.
// health is called with the new level (0-3) on every ladder transition.
type LiveRunner interface {
	Runner
	RunLive(ctx context.Context, spec RunSpec, resume []byte,
		progress func(checkpoint []byte), health func(level int)) (Outcome, error)
}

// RunState is a run's position in the supervisor's state machine.
type RunState string

// Run states. A run is queued from admission until a worker picks it up,
// running until its Runner returns, then terminal. The terminal states
// mirror engine.RunStatus plus "failed" for runs whose Runner errored or
// whose worker panicked.
const (
	StateQueued           RunState = "queued"
	StateRunning          RunState = "running"
	StateCompleted        RunState = "completed"
	StateCancelled        RunState = "cancelled"
	StateDeadlineExceeded RunState = "deadline-exceeded"
	StateDegraded         RunState = "degraded"
	StateFailed           RunState = "failed"
	// StateSuspended is NOT terminal: the arbiter checkpointed the run out
	// of execution under memory pressure and returned it to the queue; a
	// worker resumes it from its warm state once headroom exists (or an
	// operator forces it via Resume).
	StateSuspended RunState = "suspended"
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	switch s {
	case StateCompleted, StateCancelled, StateDeadlineExceeded, StateDegraded, StateFailed:
		return true
	}
	return false
}

// RunInfo is a point-in-time snapshot of one run, safe to retain.
type RunInfo struct {
	ID   uint64  `json:"id"`
	Spec RunSpec `json:"spec"`
	// Demand is the admitted simulated-GPU-memory charge in bytes.
	Demand int64    `json:"demand"`
	State  RunState `json:"state"`
	// Reason explains a cancellation or failure (api, watchdog, drain,
	// worker panic, journal replay).
	Reason string `json:"reason,omitempty"`
	// Attempts counts how many times a worker started this run; >1 means
	// the run was recovered from a journal replay.
	Attempts int `json:"attempts"`
	// Resumed is true when the current attempt was seeded from a journaled
	// checkpoint rather than started cold.
	Resumed bool `json:"resumed,omitempty"`
	// HealthLevel is the run's current degradation-ladder level (0-3),
	// live-updated for runs whose spec enabled health monitoring under a
	// LiveRunner.
	HealthLevel int `json:"health_level,omitempty"`
	// Suspends counts arbiter suspend-to-checkpoint cycles this run has
	// been through (each one adds an Attempts increment when it resumes).
	Suspends int `json:"suspends,omitempty"`
	// Checkpoints counts journaled warm-state checkpoints for this run.
	Checkpoints int        `json:"checkpoints,omitempty"`
	Submitted   time.Time  `json:"submitted"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
	// Outcome is set once the run is terminal.
	Outcome *Outcome `json:"outcome,omitempty"`
}

// --- typed admission and lookup errors ---

// ErrShuttingDown rejects submissions to a draining or killed supervisor.
var ErrShuttingDown = errors.New("supervisor: shutting down; not admitting runs")

// ErrAlreadyFinished rejects Cancel on a terminal run.
var ErrAlreadyFinished = errors.New("supervisor: run already reached a terminal state")

// ErrNotSuspended rejects Resume on a run that is not suspended.
var ErrNotSuspended = errors.New("supervisor: run is not suspended")

// ErrNotRunning rejects Suspend on a run that is not currently executing.
var ErrNotRunning = errors.New("supervisor: run is not running")

// pressureCtxKey carries the per-run memory-pressure gauge in the runner's
// context under oversubscription.
type pressureCtxKey struct{}

// PressureFromContext returns the memory-pressure gauge the supervisor
// attached to a running run's context (the arbiter's smoothed 0..1 signal,
// pinned to 1 while the run's burst is revoked), or nil when the run is not
// executing under an oversubscription arbiter. Runners feed it into their
// health controller (health.Options.Pressure) so pressured runs shed
// prefetch aggressiveness through the ordinary ladder gates.
func PressureFromContext(ctx context.Context) func() float64 {
	f, _ := ctx.Value(pressureCtxKey{}).(func() float64)
	return f
}

// ShedError is admission.ShedError re-exported at the supervisor layer: a
// submission rejected because its propagated client deadline cannot be met
// at the current queue drain rate.
type ShedError = admission.ShedError

// QueueFullError rejects a submission because the bounded submission queue
// is at capacity — backpressure, not failure: the caller should retry
// after runs drain.
type QueueFullError struct {
	// Depth is the queue capacity that was exhausted.
	Depth int
	// RetryAfter is the jittered backoff hint priced from the observed
	// drain rate (0 when the supervisor constructed the error without a
	// shedder observation yet).
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("supervisor: submission queue full (depth %d); retry after runs drain", e.Depth)
}

// QuotaError rejects a submission over the simulated GPU-memory quota.
// PerRun distinguishes "this run can never fit its slice" (permanent)
// from "the budget is committed right now" (retryable).
type QuotaError struct {
	// Demand is the run's estimated simulated GPU memory in bytes.
	Demand int64
	// Limit is the bound that was exceeded: the per-run quota slice when
	// PerRun, otherwise the whole budget.
	Limit int64
	// Committed is the budget already pledged to admitted runs (whole-
	// budget rejections only).
	Committed int64
	PerRun    bool
}

func (e *QuotaError) Error() string {
	if e.PerRun {
		return fmt.Sprintf("supervisor: run demands %d bytes of simulated GPU memory, over the %d-byte per-run quota", e.Demand, e.Limit)
	}
	return fmt.Sprintf("supervisor: run demands %d bytes of simulated GPU memory but %d of the %d-byte budget is committed; retry after runs finish", e.Demand, e.Committed, e.Limit)
}

// Retryable reports whether waiting for other runs to finish could admit
// this run (false for per-run quota violations, which never fit).
func (e *QuotaError) Retryable() bool { return !e.PerRun }

// NotFoundError reports an unknown run ID.
type NotFoundError struct{ ID uint64 }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("supervisor: no run with id %d", e.ID)
}
