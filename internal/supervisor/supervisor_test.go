package supervisor

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepum/internal/chaos"
	"deepum/internal/supervisor/journal"
)

// instantRunner completes immediately with a fixed outcome.
func instantRunner() Runner {
	return RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		return Outcome{Status: string(StateCompleted), Iterations: spec.Iterations}, nil
	})
}

// gatedRunner blocks every run on release; cancelling the context also
// releases it (with a cancelled outcome), like the engine does.
func gatedRunner(release <-chan struct{}) Runner {
	return RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		select {
		case <-release:
			return Outcome{Status: string(StateCompleted)}, nil
		case <-ctx.Done():
			return Outcome{Status: string(StateCancelled)}, nil
		}
	})
}

func drain(t *testing.T, s *Supervisor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestSubmitRunsToCompletion: the happy path — N runs through the pool,
// all terminal, transitions logged.
func TestSubmitRunsToCompletion(t *testing.T) {
	s, err := New(Config{Runner: instantRunner(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Iterations: 2, Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		info, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateCompleted {
			t.Fatalf("run %d state = %s, want completed", id, info.State)
		}
	}
	drain(t, s)
	st := s.Stats()
	if st.Terminal != 10 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := s.log.Count(string(StateQueued), string(StateRunning)); got != 10 {
		t.Fatalf("queued->running transitions = %d, want 10", got)
	}
	if got := s.log.Count(string(StateRunning), string(StateCompleted)); got != 10 {
		t.Fatalf("running->completed transitions = %d, want 10", got)
	}
}

// TestAdmissionStormTypedRejections: the admission-storm chaos pattern —
// a burst of submissions against a full queue must come back as typed
// *QueueFullError values, never block, never panic, and every admitted
// run must still reach a terminal state.
func TestAdmissionStormTypedRejections(t *testing.T) {
	sc, err := chaos.SupervisorScenarioByName("admission-storm")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s, err := New(Config{Runner: gatedRunner(release), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	accepted, rejected := 0, 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < sc.AdmissionBurst; i++ {
			_, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: int64(i)})
			switch {
			case err == nil:
				accepted++
			default:
				var qf *QueueFullError
				if !errors.As(err, &qf) {
					t.Errorf("submission %d: untyped rejection %v", i, err)
					return
				}
				if qf.Depth != 2 {
					t.Errorf("queue-full depth = %d, want 2", qf.Depth)
				}
				rejected++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("admission storm blocked — submissions must never block")
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("storm: accepted %d, rejected %d — want both non-zero", accepted, rejected)
	}
	if accepted > 1+2 {
		// 1 running + queue depth 2: nothing else can have been admitted.
		t.Fatalf("accepted %d runs with 1 worker and queue depth 2", accepted)
	}
	close(release)
	drain(t, s)
	for _, info := range s.List() {
		if !info.State.Terminal() {
			t.Fatalf("run %d ended non-terminal: %s", info.ID, info.State)
		}
	}
}

// TestQuotaAdmission: per-run quota and whole-budget quota both reject
// with typed, introspectable errors; finished runs release their charge.
func TestQuotaAdmission(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{
		Runner:          gatedRunner(release),
		Workers:         2,
		QueueDepth:      8,
		GPUMemoryBudget: 100,
		// PerRunQuota defaults to 100/2 = 50.
	})
	if err != nil {
		t.Fatal(err)
	}

	// Over the per-run slice: permanent rejection.
	_, err = s.Submit(RunSpec{Model: "gpt2-xl", Batch: 16, MemoryDemand: 60})
	var q *QuotaError
	if !errors.As(err, &q) || !q.PerRun || q.Retryable() || q.Limit != 50 {
		t.Fatalf("per-run quota rejection = %v (%+v)", err, q)
	}

	// Two 40-byte runs fit; a third exceeds the committed budget.
	a, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, MemoryDemand: 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, MemoryDemand: 40})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(RunSpec{Model: "bert-base", Batch: 8, MemoryDemand: 40})
	q = nil
	if !errors.As(err, &q) || q.PerRun || !q.Retryable() || q.Committed != 80 || q.Limit != 100 {
		t.Fatalf("budget quota rejection = %v (%+v)", err, q)
	}

	// Finishing releases the charge; the same demand is then admitted.
	close(release)
	if _, err := s.Wait(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(b); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CommittedBytes != 0 {
		t.Fatalf("committed = %d after runs finished, want 0", st.CommittedBytes)
	}
	c, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, MemoryDemand: 40})
	if err != nil {
		t.Fatalf("post-release submit: %v", err)
	}
	if _, err := s.Wait(c); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
}

// TestEstimateFillsDemand: a spec without MemoryDemand is charged what
// Config.Estimate computes.
func TestEstimateFillsDemand(t *testing.T) {
	s, err := New(Config{
		Runner:          instantRunner(),
		GPUMemoryBudget: 100,
		PerRunQuota:     100,
		Estimate:        func(spec RunSpec) (int64, error) { return 25 * spec.Batch, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Demand != 100 {
		t.Fatalf("estimated demand = %d, want 100", info.Demand)
	}
	if _, err := s.Submit(RunSpec{Model: "bert-base", Batch: 5}); err == nil {
		t.Fatal("5x25 = 125 demand admitted over a 100-byte budget")
	}
	drain(t, s)
}

// TestCancelQueuedAndRunning: cancelling a queued run finalizes it without
// a worker; cancelling a running run escalates through its context; both
// terminal states reject further cancels, and unknown IDs are typed.
func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{Runner: gatedRunner(release), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	running, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up so the second submission queues.
	waitState(t, s, running, StateRunning)
	queued, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(queued); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	info, _ := s.Get(queued)
	if info.State != StateCancelled || info.Reason != "cancelled by api" {
		t.Fatalf("queued cancel -> %s (%q)", info.State, info.Reason)
	}
	if info.Attempts != 0 {
		t.Fatalf("cancelled-in-queue run has %d attempts", info.Attempts)
	}

	if err := s.Cancel(running); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	info, err = s.Wait(running)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled || info.Reason != "cancelled by api" {
		t.Fatalf("running cancel -> %s (%q)", info.State, info.Reason)
	}

	if err := s.Cancel(running); !errors.Is(err, ErrAlreadyFinished) {
		t.Fatalf("cancel terminal run = %v, want ErrAlreadyFinished", err)
	}
	var nf *NotFoundError
	if err := s.Cancel(9999); !errors.As(err, &nf) || nf.ID != 9999 {
		t.Fatalf("cancel unknown run = %v, want NotFoundError", err)
	}
	drain(t, s)
}

// waitState polls until the run reaches the given state (bounded).
func waitState(t *testing.T, s *Supervisor, id uint64, want RunState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %d never reached %s", id, want)
}

// TestWatchdogEscalatesToCancellation: a run that stops heartbeating is
// cancelled by the watchdog with a reason naming it; a run that keeps
// heartbeating past the timeout is left alone.
func TestWatchdogEscalatesToCancellation(t *testing.T) {
	hung := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		if spec.Model == "lively" {
			// Runs 4x the watchdog timeout but heartbeats throughout.
			deadline := time.Now().Add(200 * time.Millisecond)
			for time.Now().Before(deadline) {
				progress(nil)
				select {
				case <-ctx.Done():
					return Outcome{Status: string(StateCancelled)}, nil
				case <-time.After(5 * time.Millisecond):
				}
			}
			return Outcome{Status: string(StateCompleted)}, nil
		}
		<-ctx.Done() // hangs: no progress at all
		return Outcome{Status: string(StateCancelled)}, nil
	})
	s, err := New(Config{Runner: hung, Workers: 2, WatchdogTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Submit(RunSpec{Model: "hung", Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Submit(RunSpec{Model: "lively", Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(h)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled {
		t.Fatalf("hung run state = %s, want cancelled", info.State)
	}
	if info.Reason == "" || !contains(info.Reason, "watchdog") {
		t.Fatalf("hung run reason = %q, want watchdog escalation", info.Reason)
	}
	info, err = s.Wait(l)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted {
		t.Fatalf("lively run state = %s (%q), want completed — watchdog false positive", info.State, info.Reason)
	}
	drain(t, s)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestWorkerPanicRecovery: the worker-panic chaos scenario — panicking
// workers mark their run failed, release its quota, and keep serving
// subsequent runs.
func TestWorkerPanicRecovery(t *testing.T) {
	sc, err := chaos.SupervisorScenarioByName("worker-panic")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Runner:          instantRunner(),
		Workers:         4,
		QueueDepth:      64,
		GPUMemoryBudget: 1000,
		PerRunQuota:     1000,
		Chaos:           sc,
		ChaosSeed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, MemoryDemand: 10, Seed: int64(i)}); err != nil {
			// Quota/queue pressure is possible mid-burst; wait and retry once.
			time.Sleep(10 * time.Millisecond)
			if _, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, MemoryDemand: 10, Seed: int64(i)}); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
	}
	drain(t, s)
	completed, failed := 0, 0
	for _, info := range s.List() {
		switch info.State {
		case StateCompleted:
			completed++
		case StateFailed:
			failed++
			if info.Outcome == nil || !contains(info.Outcome.Error, "panic") {
				t.Fatalf("failed run %d outcome = %+v, want panic error", info.ID, info.Outcome)
			}
		default:
			t.Fatalf("run %d ended %s — every run must reach terminal state", info.ID, info.State)
		}
	}
	if completed == 0 || failed == 0 {
		t.Fatalf("worker-panic soak: %d completed, %d failed — want both (prob %.2f)", completed, failed, sc.WorkerPanicProb)
	}
	if st := s.Stats(); st.CommittedBytes != 0 {
		t.Fatalf("panicked runs leaked quota: committed = %d", st.CommittedBytes)
	}
}

// TestSubmitAfterDrainRejected: admission stops with ErrShuttingDown once
// draining; draining twice is safe.
func TestSubmitAfterDrainRejected(t *testing.T) {
	s, err := New(Config{Runner: instantRunner(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Accepting() {
		t.Fatal("fresh supervisor not accepting")
	}
	drain(t, s)
	if s.Accepting() {
		t.Fatal("drained supervisor still accepting")
	}
	if _, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after drain = %v, want ErrShuttingDown", err)
	}
	drain(t, s) // idempotent
}

// TestDrainEscalation: a drain whose context expires cancels queued and
// running work but still winds the pool down and reports the deadline.
func TestDrainEscalation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, err := New(Config{Runner: gatedRunner(release), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Submit(RunSpec{Model: "bert-base", Batch: 8})
	waitState(t, s, a, StateRunning)
	b, _ := s.Submit(RunSpec{Model: "bert-base", Batch: 8})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("escalated drain = %v, want DeadlineExceeded", err)
	}
	ia, _ := s.Get(a)
	ib, _ := s.Get(b)
	if ia.State != StateCancelled || ib.State != StateCancelled {
		t.Fatalf("escalated drain left states %s / %s", ia.State, ib.State)
	}
	if !contains(ib.Reason, "drain") {
		t.Fatalf("queued run reason = %q, want drain escalation", ib.Reason)
	}
}

// TestJournalRecordsLifecycle: every state change a restart depends on is
// in the journal, in order, with fsync'd framing the replayer accepts.
func TestJournalRecordsLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.journal")
	ck := []byte("warm-state")
	runner := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		progress(ck)
		return Outcome{Status: string(StateCompleted), Checkpoint: []byte("final")}, nil
	})
	s, err := New(Config{Runner: runner, Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2 (mid-run + final)", info.Checkpoints)
	}
	drain(t, s)

	recs, stats, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornOffset != -1 || stats.CRCFailures != 0 {
		t.Fatalf("journal not clean: %+v", stats)
	}
	want := []journal.RecordType{journal.RecSubmitted, journal.RecStarted, journal.RecCheckpointed, journal.RecCheckpointed, journal.RecFinished}
	if len(recs) != len(want) {
		t.Fatalf("journal has %d records (%v), want %d", len(recs), types(recs), len(want))
	}
	for i, rec := range recs {
		if rec.Type != want[i] || rec.RunID != id {
			t.Fatalf("record %d = %s run %d, want %s run %d", i, rec.Type, rec.RunID, want[i], id)
		}
	}
}

func types(recs []journal.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Type.String()
	}
	return out
}

// TestConcurrentSubmitCancelStatus hammers the public API from many
// goroutines (meaningful under -race).
func TestConcurrentSubmitCancelStatus(t *testing.T) {
	s, err := New(Config{Runner: instantRunner(), Workers: 4, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: int64(w*100 + i)})
				if err != nil {
					var qf *QueueFullError
					if !errors.As(err, &qf) {
						t.Errorf("untyped rejection: %v", err)
					}
					continue
				}
				if i%3 == 0 {
					_ = s.Cancel(id)
				}
				_, _ = s.Get(id)
				_ = s.List()
				_ = s.Stats()
			}
		}(w)
	}
	wg.Wait()
	drain(t, s)
	for _, info := range s.List() {
		if !info.State.Terminal() {
			t.Fatalf("run %d ended %s", info.ID, info.State)
		}
	}
}

// TestConfigValidation: a runner is mandatory; defaults are filled.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("constructed a supervisor with no runner")
	}
	s, err := New(Config{Runner: instantRunner(), GPUMemoryBudget: 800, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PerRunQuota != 100 {
		t.Fatalf("default per-run quota = %d, want budget/workers = 100", st.PerRunQuota)
	}
	drain(t, s)
	_ = fmt.Sprintf("%v", s.Stats())
}
