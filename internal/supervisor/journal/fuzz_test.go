package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame hand-encodes one journal frame exactly as Append lays it out
// (length, type, runID, data, CRC over length+payload), so the fuzz corpus
// can craft CRC-valid hostile frames the file-level API would refuse to
// write.
func frame(typ RecordType, runID uint64, data []byte) []byte {
	var buf bytes.Buffer
	writeU32(&buf, uint32(1+8+len(data)))
	buf.WriteByte(byte(typ))
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], runID)
	buf.Write(id[:])
	buf.Write(data)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// rawFrame builds a frame from an already-encoded length field and payload,
// with a correct CRC — for lying length fields the checksum cannot catch.
func rawFrame(length uint32, payload []byte) []byte {
	var buf bytes.Buffer
	writeU32(&buf, length)
	buf.Write(payload)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// journalImage assembles a syntactically valid journal file: header plus
// the given frames.
func journalImage(frames ...[]byte) []byte {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	writeU32(&buf, Version)
	for _, f := range frames {
		buf.Write(f)
	}
	return buf.Bytes()
}

// FuzzReplayJournal feeds Replay adversarial WAL bytes. Whatever the input
// — torn tails, bit flips, lying length fields, confused record types —
// the decoder must never panic, never size an allocation from an
// unvalidated length, and must satisfy two fixed points: re-encoding the
// replayed prefix yields a journal that replays identically and cleanly,
// and truncating the original file at the reported torn offset removes
// exactly the unreadable tail (the same records then parse clean to EOF).
func FuzzReplayJournal(f *testing.F) {
	spec := []byte(`{"spec":{"model":"bert-base","batch":8},"demand":1048576}`)
	fin := []byte(`{"state":"completed","outcome":{"status":"completed"}}`)
	valid := journalImage(
		frame(RecSubmitted, 1, spec),
		frame(RecStarted, 1, nil),
		frame(RecCheckpointed, 1, bytes.Repeat([]byte{0xAB}, 64)),
		frame(RecFinished, 1, fin),
		frame(RecSubmitted, 2, spec),
	)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DEEPUMWJ"))                 // header torn mid-version
	f.Add(journalImage())                     // header only, no frames
	f.Add([]byte("NOTAJRNL\x01\x00\x00\x00")) // wrong magic
	f.Add(valid[:len(valid)-3])               // torn tail: truncated CRC
	f.Add(valid[:headerLen+2])                // torn tail: truncated length field
	flipped := bytes.Clone(valid)             // bit flip mid-payload
	flipped[headerLen+10] ^= 0x20
	f.Add(flipped)
	// CRC-valid hostile frames: the checksum passes, so every defense must
	// live in the frame decoder itself.
	f.Add(journalImage(rawFrame(0xFFFFFFFF, []byte{byte(RecSubmitted)})))         // length ~4 GiB
	f.Add(journalImage(rawFrame(MaxRecordBytes+1, []byte{byte(RecSubmitted)})))   // just over the cap
	f.Add(journalImage(rawFrame(3, []byte{byte(RecSubmitted), 0, 0})))            // length below type+runID
	f.Add(journalImage(frame(RecordType(99), 1, nil)))                            // unknown type, valid CRC
	f.Add(journalImage(frame(RecStarted, 1, spec)))                               // type confusion: started with payload
	f.Add(journalImage(frame(RecFinished, 1, nil), frame(RecordType(0), 2, nil))) // good frame then zero type
	f.Add(journalImage(frame(RecAdmissionKey, 3, []byte("retry-key-3")), frame(RecSubmitted, 3, spec)))
	f.Add(journalImage(frame(RecAdmissionKey, 3, nil))) // type confusion: key record with no key
	// Suspended-run lifecycle: submit, start, checkpoint, suspend, restart,
	// finish — the arbiter's suspend-to-checkpoint shape.
	f.Add(journalImage(
		frame(RecSubmitted, 4, spec),
		frame(RecStarted, 4, nil),
		frame(RecCheckpointed, 4, bytes.Repeat([]byte{0xCD}, 48)),
		frame(RecSuspended, 4, []byte("memory pressure")),
		frame(RecStarted, 4, nil),
		frame(RecFinished, 4, fin),
	))
	f.Add(journalImage(frame(RecSuspended, 4, nil)))                                // reasonless suspension is legal
	f.Add(journalImage(frame(RecSuspended, 4, spec), frame(RecSubmitted, 5, spec))) // suspend then unrelated submit
	f.Add(journalImage(frame(RecordType(7), 4, []byte("beyond-suspended"))))        // first type past the known range

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		recs, stats, err := Replay(bytes.NewReader(data))
		if err != nil {
			// Errors are reserved for "not a journal at all"; they must
			// never come with replayed records.
			if len(recs) != 0 {
				t.Fatalf("Replay returned %d records alongside error %v", len(recs), err)
			}
			return
		}
		if stats.Records != len(recs) {
			t.Fatalf("stats.Records = %d, replayed %d", stats.Records, len(recs))
		}
		for i, r := range recs {
			if !knownType(r.Type) {
				t.Fatalf("record %d has unknown type %d", i, r.Type)
			}
			if len(r.Data) > MaxRecordBytes {
				t.Fatalf("record %d data %d bytes exceeds MaxRecordBytes", i, len(r.Data))
			}
			if r.Type == RecStarted && len(r.Data) > 0 {
				t.Fatalf("record %d: started record with %d payload bytes survived replay", i, len(r.Data))
			}
			if r.Type == RecAdmissionKey && len(r.Data) == 0 {
				t.Fatalf("record %d: admission-key record with no key survived replay", i)
			}
		}

		// Fixed point 1: the replayed prefix re-encodes to a journal that
		// replays identically and parses clean to EOF.
		frames := make([][]byte, len(recs))
		for i, r := range recs {
			frames[i] = frame(r.Type, r.RunID, r.Data)
		}
		again, astats, err := Replay(bytes.NewReader(journalImage(frames...)))
		if err != nil {
			t.Fatalf("re-encoded journal does not replay: %v", err)
		}
		if astats.TornOffset != -1 {
			t.Fatalf("re-encoded journal reports torn offset %d", astats.TornOffset)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-encoded journal replays %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			a, b := recs[i], again[i]
			if a.Type != b.Type || a.RunID != b.RunID || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("record %d drifted across re-encode: %+v vs %+v", i, a, b)
			}
		}

		// Fixed point 2: truncating at the torn offset removes exactly the
		// unreadable tail — what Open does to heal the file.
		if stats.TornOffset >= 0 {
			if stats.TornOffset < headerLen || stats.TornOffset > int64(len(data)) {
				t.Fatalf("torn offset %d outside [header, len] of %d-byte file", stats.TornOffset, len(data))
			}
			healed, hstats, err := Replay(bytes.NewReader(data[:stats.TornOffset]))
			if err != nil {
				t.Fatalf("healed journal does not replay: %v", err)
			}
			if hstats.TornOffset != -1 || len(healed) != len(recs) {
				t.Fatalf("healed journal: torn %d, %d records, want clean with %d",
					hstats.TornOffset, len(healed), len(recs))
			}
		}
	})
}
