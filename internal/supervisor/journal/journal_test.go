package journal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "runs.journal")
}

func appendAll(t *testing.T, j *Journal, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %v: %v", r.Type, err)
		}
	}
}

var sampleRecords = []Record{
	{Type: RecSubmitted, RunID: 1, Data: []byte(`{"model":"bert-base"}`)},
	{Type: RecStarted, RunID: 1},
	{Type: RecCheckpointed, RunID: 1, Data: bytes.Repeat([]byte{0xAB}, 100)},
	{Type: RecSubmitted, RunID: 2, Data: []byte(`{"model":"dlrm"}`)},
	{Type: RecFinished, RunID: 1, Data: []byte(`{"status":"completed"}`)},
}

// TestAppendReplayRoundtrip: records come back intact, in order, with
// clean stats.
func TestAppendReplayRoundtrip(t *testing.T) {
	path := tmpJournal(t)
	j, recs, stats, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || stats.TornOffset != -1 {
		t.Fatalf("fresh journal replayed %d records, torn %d", len(recs), stats.TornOffset)
	}
	appendAll(t, j, sampleRecords)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornOffset != -1 || stats.CRCFailures != 0 {
		t.Fatalf("clean journal reported torn=%d crc=%d", stats.TornOffset, stats.CRCFailures)
	}
	if len(got) != len(sampleRecords) {
		t.Fatalf("replayed %d records, want %d", len(got), len(sampleRecords))
	}
	for i, r := range got {
		w := sampleRecords[i]
		if r.Type != w.Type || r.RunID != w.RunID || !bytes.Equal(r.Data, w.Data) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	if stats.ByType[RecSubmitted] != 2 || stats.ByType[RecFinished] != 1 {
		t.Fatalf("ByType = %v", stats.ByType)
	}
}

// TestTornTailTruncatedFrame: a partial final frame (kill -9 mid-write)
// replays the intact prefix and reports the torn offset; reopening
// truncates it and appends land cleanly after.
func TestTornTailTruncatedFrame(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, sampleRecords)
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last frame: drop its final 3 bytes.
	torn := raw[:len(raw)-3]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sampleRecords)-1 {
		t.Fatalf("replayed %d records from torn journal, want %d", len(recs), len(sampleRecords)-1)
	}
	if !stats.TruncatedFrame || stats.CRCFailures != 0 {
		t.Fatalf("stats = %+v, want truncated frame, no crc failures", stats)
	}
	if stats.TornOffset < 0 {
		t.Fatal("torn offset not reported")
	}

	// Reopen for append: tail truncated, new append durable.
	j, recs, stats, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sampleRecords)-1 || stats.TornOffset < 0 {
		t.Fatalf("reopen replayed %d records (torn %d)", len(recs), stats.TornOffset)
	}
	if err := j.Append(Record{Type: RecFinished, RunID: 2, Data: []byte(`{"status":"cancelled"}`)}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, stats, err = ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornOffset != -1 || len(recs) != len(sampleRecords) {
		t.Fatalf("after truncate+append: %d records, torn %d", len(recs), stats.TornOffset)
	}
	if last := recs[len(recs)-1]; last.Type != RecFinished || last.RunID != 2 {
		t.Fatalf("last record = %+v", last)
	}
}

// TestCRCFailureStopsReplay: a bit flip inside a frame fails its checksum;
// replay keeps the prefix and counts one CRC failure.
func TestCRCFailureStopsReplay(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, sampleRecords)
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the data of the third frame (the checkpoint payload).
	raw[headerLen+frameOverhead+len(sampleRecords[0].Data)+frameOverhead+4+1+8+10] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", len(recs))
	}
	if stats.CRCFailures != 1 || stats.TruncatedFrame {
		t.Fatalf("stats = %+v, want exactly one crc failure", stats)
	}
}

// TestOversizedLengthRejected: a frame whose length field claims more than
// MaxRecordBytes is classified as corruption, never allocated.
func TestOversizedLengthRejected(t *testing.T) {
	path := tmpJournal(t)
	j, _, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, sampleRecords[:1])
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], uint32(MaxRecordBytes+1))
	raw = append(raw, huge[:]...)
	raw = append(raw, 0xFF, 0xFF)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || stats.CRCFailures != 1 {
		t.Fatalf("recs=%d stats=%+v, want 1 record and the oversized frame counted as corrupt", len(recs), stats)
	}
}

// TestNotAJournal: wrong magic and wrong version both error out rather
// than replaying garbage.
func TestNotAJournal(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayFile(path); err == nil {
		t.Fatal("replayed a non-journal without error")
	}

	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	writeU32(&buf, Version+7)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayFile(path); err == nil {
		t.Fatal("replayed an unsupported version without error")
	}
}

// TestAppendValidation: unknown types and oversized data are refused.
func TestAppendValidation(t *testing.T) {
	j, _, _, err := Open(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Type: RecordType(99)}); err == nil {
		t.Fatal("appended unknown record type")
	}
	if err := j.Append(Record{Type: RecStarted, Data: make([]byte, MaxRecordBytes+1)}); err == nil {
		t.Fatal("appended oversized record")
	}
}
