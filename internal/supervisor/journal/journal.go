// Package journal is the supervisor's crash-safe write-ahead log. Every
// run-state transition the supervisor must survive a process kill —
// submitted, started, checkpointed, finished — is appended as one framed,
// CRC32-checksummed record and fsync'd before the transition takes effect,
// so a restarted supervisor reconstructs every run's state by replay.
//
// File layout (little-endian throughout):
//
//	header  [8]byte  "DEEPUMWJ"
//	version uint32   (currently 1)
//	frame*           appended records
//
// Each frame:
//
//	length  uint32   bytes of payload (type + runID + data)
//	payload type(1) runID(8) data(length-9)
//	crc32   uint32   IEEE, over the length field and payload
//
// A kill -9 can tear the last frame (partial write) or leave a frame whose
// fsync never completed (checksum mismatch at the tail). Replay tolerates
// both: it stops at the first unreadable frame, reports its byte offset as
// the torn tail, and Open truncates the file there so subsequent appends
// produce a clean log again. There is no per-frame resync marker, so a
// corrupt frame in the middle of the file also ends replay at that frame —
// indistinguishable from a torn tail by construction, and handled the same
// way.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// fileMagic identifies a supervisor journal.
var fileMagic = [8]byte{'D', 'E', 'E', 'P', 'U', 'M', 'W', 'J'}

// Version is the current journal encoding version. A reader rejects any
// other version rather than guessing at the frame layout.
const Version uint32 = 1

const headerLen = 8 + 4

// frameOverhead is the fixed cost of one frame: length + type + runID + crc.
const frameOverhead = 4 + 1 + 8 + 4

// MaxRecordBytes bounds one record's data so a corrupt length field can
// never drive a huge allocation during replay (checkpoint payloads are a
// few MiB at most in practice).
const MaxRecordBytes = 64 << 20

// RecordType tags what a record means to the supervisor.
type RecordType uint8

// Record types, in run-lifecycle order.
const (
	// RecSubmitted: a run was admitted; data is the JSON-encoded spec.
	RecSubmitted RecordType = 1
	// RecStarted: a worker picked the run up; data is empty. A run with
	// more started than finished records was in flight when the process
	// died.
	RecStarted RecordType = 2
	// RecCheckpointed: the run reported warm state mid-flight; data is the
	// opaque checkpoint payload (a correlation checkpoint stream for DeepUM
	// runs). Replay keeps only the latest per run.
	RecCheckpointed RecordType = 3
	// RecFinished: the run reached a terminal state; data is the
	// JSON-encoded outcome summary.
	RecFinished RecordType = 4
	// RecAdmissionKey: an idempotency key was bound to a run ID; data is the
	// key bytes (printable ASCII, at most admission.MaxKeyLen). Written
	// BEFORE the run's RecSubmitted record, so a crash between the two
	// leaves a dangling key with no run — replay drops it and a client
	// retry creates exactly one run. The reverse order would leave a
	// keyless run that a retry duplicates.
	RecAdmissionKey RecordType = 5
	// RecSuspended: the arbiter suspended the run to its checkpoint and
	// returned it to the queue; data is a short human-readable reason.
	// Non-terminal: replay treats a run whose latest lifecycle record is a
	// suspension exactly like an interrupted one — requeued and resumed
	// from its last RecCheckpointed payload — so kill-during-suspend and
	// federation handoff need no special casing.
	RecSuspended RecordType = 6
)

func (t RecordType) String() string {
	switch t {
	case RecSubmitted:
		return "submitted"
	case RecStarted:
		return "started"
	case RecCheckpointed:
		return "checkpointed"
	case RecFinished:
		return "finished"
	case RecAdmissionKey:
		return "admission-key"
	case RecSuspended:
		return "suspended"
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

// knownType reports whether t is a record type this version understands.
// Unknown types fail replay: with no compatibility story yet, a foreign
// type means the file is not ours or is corrupt.
func knownType(t RecordType) bool {
	return t >= RecSubmitted && t <= RecSuspended
}

// Record is one journal entry.
type Record struct {
	Type  RecordType
	RunID uint64
	Data  []byte
}

// Journal is an append-only, fsync'd record log.
type Journal struct {
	f    *os.File
	path string
	// nosync skips the per-append fsync. Only test harnesses that simulate
	// kills in-process (where the page cache survives) should set it; a
	// real kill -9 needs the fsync for the write-ahead contract.
	nosync bool
}

// Open opens (or creates) the journal at path for appending and replays
// its existing records. A torn tail is truncated away so the file ends on
// a frame boundary; the replayed prefix is returned along with its stats.
func Open(path string) (*Journal, []Record, ReplayStats, error) {
	return OpenSync(path, true)
}

// OpenSync is Open with the per-append fsync made optional. sync=false
// trades the kill -9 durability guarantee for throughput; it is meant for
// soak harnesses that kill supervisors in-process (Supervisor.Kill), where
// the OS page cache survives and replay correctness does not depend on
// the disk.
func OpenSync(path string, sync bool) (*Journal, []Record, ReplayStats, error) {
	var recs []Record
	j, stats, err := OpenStream(path, sync, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})
	return j, recs, stats, err
}

// OpenStream is OpenSync with the replayed records streamed through fn
// instead of materialized: memory high-water during recovery is one frame,
// which matters when the journal carries months of inline checkpoint
// payloads. An error from fn aborts the open.
func OpenStream(path string, sync bool, fn func(Record) error) (*Journal, ReplayStats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("journal: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, ReplayStats{}, fmt.Errorf("journal: stat %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, nosync: !sync}
	if info.Size() == 0 {
		var hdr bytes.Buffer
		hdr.Write(fileMagic[:])
		writeU32(&hdr, Version)
		if _, err := f.Write(hdr.Bytes()); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, ReplayStats{}, fmt.Errorf("journal: initializing %s: %w", path, err)
		}
		return j, ReplayStats{TornOffset: -1}, nil
	}
	stats, err := ReplayStream(f, fn)
	if err != nil {
		f.Close()
		return nil, stats, err
	}
	if stats.TornOffset >= 0 {
		if err := f.Truncate(stats.TornOffset); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("journal: truncating torn tail of %s at %d: %w", path, stats.TornOffset, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("journal: syncing truncated %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("journal: seeking to end of %s: %w", path, err)
	}
	return j, stats, nil
}

// Append frames, writes, and fsyncs one record. The record is durable when
// Append returns nil — the caller may then act on the transition.
func (j *Journal) Append(r Record) error {
	if !knownType(r.Type) {
		return fmt.Errorf("journal: cannot append unknown record type %d", r.Type)
	}
	if len(r.Data) > MaxRecordBytes {
		return fmt.Errorf("journal: record data %d bytes exceeds limit %d", len(r.Data), MaxRecordBytes)
	}
	if r.Type == RecStarted && len(r.Data) > 0 {
		// Started records carry no payload in this version; writing one
		// with data would make the file unreplayable (the decoder treats
		// it as record-type confusion), so refuse it at the source.
		return fmt.Errorf("journal: started record carries %d payload bytes (must be empty)", len(r.Data))
	}
	if r.Type == RecAdmissionKey && len(r.Data) == 0 {
		// An admission-key record's payload IS the key; an empty one is
		// meaningless and the decoder treats it as type confusion.
		return fmt.Errorf("journal: admission-key record with empty payload")
	}
	var buf bytes.Buffer
	buf.Grow(frameOverhead + len(r.Data))
	writeU32(&buf, uint32(1+8+len(r.Data)))
	buf.WriteByte(byte(r.Type))
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], r.RunID)
	buf.Write(id[:])
	buf.Write(r.Data)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: appending %s record: %w", r.Type, err)
	}
	if j.nosync {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync after %s record: %w", r.Type, err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// ReplayStats describes what a replay pass found.
type ReplayStats struct {
	// Records is the number of intact records replayed.
	Records int
	// ByType counts intact records per type.
	ByType map[RecordType]int
	// TornOffset is the byte offset of the first unreadable frame (the
	// torn tail), or -1 when the file parsed cleanly to EOF. Everything
	// before it replayed intact.
	TornOffset int64
	// CRCFailures counts frames that were fully present but failed their
	// checksum (at most 1: replay cannot resync past a bad frame).
	CRCFailures int
	// TruncatedFrame is true when the tail ended mid-frame (a partial
	// write) rather than on a checksum failure.
	TruncatedFrame bool
}

// Replay decodes records from r until EOF or the first unreadable frame.
// It only errors on I/O failures or a file that is not a journal at all;
// torn tails and checksum failures are reported in the stats, not as
// errors, because they are the expected residue of a kill -9.
//
// Replay materializes every record — including every checkpoint payload —
// at once; callers that only fold records into state (the supervisor's
// replay, a federation handoff) should use ReplayStream, which holds one
// frame at a time.
func Replay(r io.ReadSeeker) ([]Record, ReplayStats, error) {
	var recs []Record
	stats, err := ReplayStream(r, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})
	return recs, stats, err
}

// ReplayStream decodes records from r one frame at a time, calling fn for
// each intact record in file order. Memory high-water is a single frame,
// not the file: a journal holding months of checkpoint history replays in
// constant space when fn folds instead of accumulating. Stopping rules
// match Replay; an error from fn aborts the stream and is returned.
func ReplayStream(r io.ReadSeeker, fn func(Record) error) (ReplayStats, error) {
	stats := ReplayStats{TornOffset: -1, ByType: map[RecordType]int{}}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return stats, fmt.Errorf("journal: seek: %w", err)
	}
	br := bufio.NewReaderSize(r, 1<<16)

	var hdr [headerLen]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return stats, fmt.Errorf("journal: file too short for header (%d bytes)", n)
		}
		return stats, fmt.Errorf("journal: reading header: %w", err)
	}
	if !bytes.Equal(hdr[:8], fileMagic[:]) {
		return stats, fmt.Errorf("journal: bad magic %q (not a supervisor journal)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:headerLen]); v != Version {
		return stats, fmt.Errorf("journal: unsupported version %d (want %d)", v, Version)
	}

	off := int64(headerLen)
	var frame []byte // reused across iterations: length + payload + crc
	for {
		var lenBuf [4]byte
		n, err := io.ReadFull(br, lenBuf[:])
		if err == io.EOF {
			return stats, nil // clean end on a frame boundary
		}
		if err == io.ErrUnexpectedEOF {
			_ = n
			stats.TornOffset, stats.TruncatedFrame = off, true
			return stats, nil
		}
		if err != nil {
			return stats, fmt.Errorf("journal: reading frame length at %d: %w", off, err)
		}
		length := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if length < 1+8 || length > MaxRecordBytes {
			// A garbage length field is indistinguishable from a torn
			// frame; classify it as a checksum-grade failure.
			stats.TornOffset, stats.CRCFailures = off, stats.CRCFailures+1
			return stats, nil
		}
		if cap(frame) < 4+length+4 {
			frame = make([]byte, 4+length+4)
		}
		frame = frame[:4+length+4]
		copy(frame, lenBuf[:])
		if _, err := io.ReadFull(br, frame[4:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				stats.TornOffset, stats.TruncatedFrame = off, true
				return stats, nil
			}
			return stats, fmt.Errorf("journal: reading frame at %d: %w", off, err)
		}
		sum := binary.LittleEndian.Uint32(frame[4+length:])
		if crc32.ChecksumIEEE(frame[:4+length]) != sum {
			stats.TornOffset, stats.CRCFailures = off, stats.CRCFailures+1
			return stats, nil
		}
		typ := RecordType(frame[4])
		if !knownType(typ) {
			stats.TornOffset, stats.CRCFailures = off, stats.CRCFailures+1
			return stats, nil
		}
		if typ == RecStarted && length > 1+8 {
			// Record-type confusion: a started record never carries a
			// payload, so a "started" frame with data is a checkpoint or
			// spec frame whose type byte was corrupted in a CRC-colliding
			// way (or a hostile file). Trusting it would silently misfile
			// run state; stop replay here like any other corrupt frame.
			stats.TornOffset, stats.CRCFailures = off, stats.CRCFailures+1
			return stats, nil
		}
		if typ == RecAdmissionKey && length == 1+8 {
			// The inverse confusion: an admission-key record's payload is
			// the key itself, so an empty one is a corrupted frame.
			stats.TornOffset, stats.CRCFailures = off, stats.CRCFailures+1
			return stats, nil
		}
		rec := Record{
			Type:  typ,
			RunID: binary.LittleEndian.Uint64(frame[5:13]),
		}
		if length > 1+8 {
			rec.Data = append([]byte(nil), frame[13:4+length]...)
		}
		stats.Records++
		stats.ByType[typ]++
		if err := fn(rec); err != nil {
			return stats, err
		}
		off += int64(4 + length + 4)
	}
}

// ReplayFile replays the journal at path read-only (used by
// deepum-inspect; the file is left untouched, torn tail included).
func ReplayFile(path string) ([]Record, ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ReplayStats{TornOffset: -1}, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	return Replay(f)
}

// ReplayStreamFile is ReplayStream over the journal at path, read-only.
func ReplayStreamFile(path string, fn func(Record) error) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReplayStats{TornOffset: -1}, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	return ReplayStream(f, fn)
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}
