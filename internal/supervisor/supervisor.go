// Package supervisor keeps many concurrent simulated training runs healthy
// under load. It layers on top of the single-run lifecycle plumbing
// (context cancellation, typed RunStatus, warm-state checkpoints): a
// bounded worker pool executes runs, admission control rejects work the
// system cannot hold with typed errors (queue full, over GPU-memory
// quota), per-run quotas partition the simulated GPU memory budget,
// hang-detection watchdogs escalate stalled runs to cancellation, and
// shutdown drains gracefully. Every run-state transition that must survive
// a process kill is written ahead to a crash-safe journal
// (internal/supervisor/journal), so a restarted supervisor reconstructs
// all run state by replay and resumes interrupted runs from their latest
// journaled checkpoints.
package supervisor

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"deepum/internal/admission"
	"deepum/internal/arbiter"
	"deepum/internal/chaos"
	"deepum/internal/metrics"
	"deepum/internal/obs"
	"deepum/internal/store"
	"deepum/internal/supervisor/journal"
)

// Config parameterizes a Supervisor.
type Config struct {
	// Runner executes runs; required.
	Runner Runner
	// Workers is the pool size — how many runs execute concurrently.
	// Defaults to 4.
	Workers int
	// QueueDepth bounds the submission queue (admitted-but-not-started
	// runs). A full queue rejects submissions with *QueueFullError —
	// backpressure instead of unbounded buffering. Defaults to 16.
	QueueDepth int
	// GPUMemoryBudget is the total simulated GPU memory (bytes) the
	// supervisor may pledge to admitted runs at once; 0 disables quota
	// admission.
	GPUMemoryBudget int64
	// PerRunQuota caps one run's demand. 0 with a budget set defaults to
	// an equal partition, GPUMemoryBudget / Workers — unless Oversubscribe
	// is on, where it defaults to the whole budget: under the arbiter a
	// per-run rejection means "this run can NEVER fit the device", not
	// "the pool is busy right now".
	PerRunQuota int64
	// Oversubscribe replaces hard total-budget QuotaError rejections with
	// arbiter admission: runs whose aggregate demand exceeds
	// GPUMemoryBudget are all admitted and kept alive under pressure via
	// soft grants, burst revocation, and suspend-to-checkpoint. Requires a
	// positive GPUMemoryBudget.
	Oversubscribe bool
	// Arbiter tunes the oversubscription arbiter (zero values select the
	// arbiter package defaults; Budget defaults to GPUMemoryBudget).
	// Ignored unless Oversubscribe is set.
	Arbiter arbiter.Options
	// ArbiterTick is the wall-clock cadence of arbiter escalation ticks
	// (pressure smoothing, revocation, suspension). Defaults to 10ms.
	ArbiterTick time.Duration
	// Obs, when non-nil, receives a KindPressure event on TrackArbiter for
	// every arbiter grant-state change (wall-clock timestamps).
	Obs *obs.Recorder
	// StoreGCThreshold enables reference-counted checkpoint-store garbage
	// collection: after a run finishes, if the fraction of store keys not
	// referenced by any live (non-terminal) run's resume state exceeds the
	// threshold, the supervisor compacts the store in the background.
	// 0 disables. Only safe when this supervisor is the store's sole
	// writer — a federation must GC at the federation level instead, with
	// the union of every shard's live set (Federation.StoreGC).
	StoreGCThreshold float64
	// WatchdogTimeout is how long a running run may go without a progress
	// heartbeat before the watchdog cancels it; 0 disables hang detection.
	// RunSpec.Timeout overrides it per run.
	WatchdogTimeout time.Duration
	// JournalPath enables the crash-safe run journal. An existing journal
	// is replayed at construction: finished runs become history,
	// interrupted ones are re-admitted and resumed from their latest
	// checkpoint. Empty keeps all state in memory.
	JournalPath string
	// JournalNoSync skips the per-append fsync. Only harnesses that kill
	// supervisors in-process (Supervisor.Kill, where the page cache
	// survives) should set it; a real kill -9 needs the fsync.
	JournalNoSync bool
	// Checkpoints, when non-nil, is the content-addressed store checkpoint
	// blobs are saved to. The journal then carries a 16-byte reference per
	// RecCheckpointed record instead of the blob: the journal stops growing
	// with checkpoint history, identical checkpoints dedup across runs and
	// restarts, and a federation handoff moves references while the blobs
	// stay put in the shared store. Store failures (full disk, a detected
	// hash collision) fall back to inlining the blob in the journal —
	// checkpoint durability never regresses below the journal-only
	// contract. A reference that no longer resolves at resume time (the
	// blob was scrub-degraded or compacted away) degrades that run to a
	// cold restart. The caller owns the store and closes it after Drain.
	Checkpoints *store.Store
	// Estimate fills RunSpec.MemoryDemand at admission when the spec left
	// it zero (e.g. from the workload's scaled footprint); nil treats
	// missing demand as zero.
	Estimate func(RunSpec) (int64, error)
	// Chaos injects supervisor-level faults (see chaos.SupervisorScenarios);
	// ChaosSeed makes the injection deterministic (0 uses 1).
	Chaos     chaos.SupervisorScenario
	ChaosSeed int64
}

// Supervisor is the multi-run supervision layer. All methods are safe for
// concurrent use.
type Supervisor struct {
	cfg    Config
	epoch  time.Time
	log    metrics.SyncTransitionLog
	wg     sync.WaitGroup
	waitWG sync.Once

	prom *metrics.Registry

	// keys maps idempotency keys to run IDs (rebuilt from RecAdmissionKey
	// records on replay); shedder models queue drain for deadline-aware
	// admission. Both carry their own locks and never take s.mu.
	keys      *admission.KeyTable
	shedder   *admission.Shedder
	dedupHits atomic.Int64

	mu        sync.Mutex
	runs      map[uint64]*run
	order     []uint64
	nextID    uint64
	committed int64
	draining  bool
	killed    bool
	// The submission queue is a cond-guarded slice, not a channel: Submit
	// bounds it at Config.QueueDepth (backpressure), but journal replay
	// and cross-shard adoption (Adopt) may push past the bound — those
	// runs were already admitted once and must never be re-rejected.
	queued    []uint64
	qcond     *sync.Cond
	qclosed   bool
	jl        *journal.Journal
	jlClosed  bool
	rng       *rand.Rand
	recovered int
	adopted   int
	// Checkpoint-store accounting: payloads stored as references vs
	// inlined (store rejected), and resumes degraded to cold restart
	// because their reference no longer resolved.
	ckptStored   int
	ckptInlined  int
	coldRestarts int
	// Oversubscription accounting: suspend-to-checkpoint cycles and
	// resumptions of suspended runs.
	suspends int64
	resumes  int64

	// arb is the oversubscription arbiter (nil when Oversubscribe is off;
	// every arbiter method is nil-safe). arbStop ends its tick loop once.
	arb      *arbiter.Arbiter
	arbStop  chan struct{}
	arbOnce  sync.Once
	// Store-GC accounting: gcBusy serializes background compactions;
	// counters are read by Stats.
	gcBusy      atomic.Bool
	gcRuns      atomic.Int64
	gcReclaimed atomic.Int64

	workersDone chan struct{}
	killedCh    chan struct{}
}

// Admission classes for the queue-wait histogram: runs that propagated a
// client deadline vs best-effort submissions (including adoptions, whose
// deadline does not survive a handoff).
const (
	classDeadline   = "deadline"
	classBestEffort = "best_effort"
)

// run is the supervisor's internal per-run record; info is the published
// snapshot, the rest is scheduling state.
type run struct {
	class        string // admission class (classDeadline / classBestEffort)
	info         RunInfo
	resume       []byte // latest checkpoint bytes, what a restart resumes from
	cancel       context.CancelFunc
	cancelReason string
	// suspendReason, when non-empty on a running run, asks finalize to
	// suspend-to-checkpoint instead of going terminal (arbiter pressure or
	// the Suspend API). A real cancellation reason always wins over it.
	suspendReason string
	// force lets Resume bypass the arbiter's headroom gate once.
	force bool
	heartbeat    atomic.Int64 // unix nanos of last progress signal
	healthLevel  atomic.Int64 // current degradation-ladder level (LiveRunner)
	done         chan struct{}
}

// journalSpec is the submitted-record payload: the spec plus the admitted
// demand, so replay does not re-estimate.
type journalSpec struct {
	Spec   RunSpec `json:"spec"`
	Demand int64   `json:"demand"`
}

// journalFinish is the finished-record payload.
type journalFinish struct {
	State   RunState `json:"state"`
	Reason  string   `json:"reason,omitempty"`
	Outcome *Outcome `json:"outcome,omitempty"`
}

// New builds a supervisor, replays its journal if one is configured, and
// starts the worker pool. Interrupted runs found in the journal are
// already queued (and counted against the quota) when New returns.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("supervisor: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Oversubscribe && cfg.GPUMemoryBudget <= 0 {
		return nil, fmt.Errorf("supervisor: Oversubscribe requires a positive GPUMemoryBudget")
	}
	if cfg.PerRunQuota == 0 && cfg.GPUMemoryBudget > 0 {
		if cfg.Oversubscribe {
			// Under the arbiter, the only permanent rejection is a run that
			// could never fit the device even alone; the equal-partition
			// default would reject a run that fits the whole budget on an
			// otherwise idle supervisor.
			cfg.PerRunQuota = cfg.GPUMemoryBudget
		} else {
			cfg.PerRunQuota = cfg.GPUMemoryBudget / int64(cfg.Workers)
		}
	}
	seed := cfg.ChaosSeed
	if seed == 0 {
		seed = 1
	}
	s := &Supervisor{
		cfg:         cfg,
		epoch:       time.Now(),
		runs:        map[uint64]*run{},
		nextID:      1,
		rng:         rand.New(rand.NewSource(seed)),
		workersDone: make(chan struct{}),
		killedCh:    make(chan struct{}),
		prom:        metrics.NewRegistry(),
		keys:        admission.NewKeyTable(),
		shedder:     admission.NewShedder(admission.ShedOptions{Seed: seed}),
	}
	s.qcond = sync.NewCond(&s.mu)
	if cfg.Oversubscribe {
		aopt := cfg.Arbiter
		if aopt.Budget == 0 {
			aopt.Budget = cfg.GPUMemoryBudget
		}
		userEvent := aopt.OnEvent
		aopt.OnEvent = func(ev arbiter.Event) {
			s.noteArbiter(ev)
			if userEvent != nil {
				userEvent(ev)
			}
		}
		arb, err := arbiter.New(aopt)
		if err != nil {
			return nil, fmt.Errorf("supervisor: %w", err)
		}
		s.arb = arb
		s.arbStop = make(chan struct{})
	}
	s.initMetrics()
	if cfg.JournalPath != "" {
		// Stream the journal through the adoption folder: the fold keeps
		// only the latest checkpoint payload per run, so recovery memory is
		// one frame plus one live checkpoint per run — not the journal's
		// full checkpoint history (with a store configured, the payloads
		// are 16-byte references and even that shrinks to nothing).
		folder := NewAdoptionFolder()
		jl, _, err := journal.OpenStream(cfg.JournalPath, !cfg.JournalNoSync, func(rec journal.Record) error {
			folder.Add(rec)
			return nil
		})
		if err != nil {
			return nil, err
		}
		s.jl = jl
		// Replay our own journal: the records are already durable here, so
		// nothing is re-journaled, and recovered runs bypass the
		// queue-depth bound — they were admitted before the crash.
		for _, a := range folder.Adoptions() {
			if _, err := s.admitAdoptionLocked(a, false); err != nil {
				jl.Close()
				return nil, fmt.Errorf("supervisor: journal replay: %w", err)
			}
		}
		s.recovered, s.adopted = s.adopted, 0
	}
	for n := 0; n < cfg.Workers; n++ {
		s.wg.Add(1)
		go s.worker(n)
	}
	if s.arb != nil {
		tick := cfg.ArbiterTick
		if tick <= 0 {
			tick = 10 * time.Millisecond
		}
		s.wg.Add(1)
		go s.arbiterLoop(tick)
	}
	return s, nil
}

// arbiterLoop drives the arbiter's escalation ladder on a wall-clock tick:
// pressure smoothing, burst revocation/restoration, and suspend-victim
// selection. Each tick also wakes the workers so queue entries gated on
// resume headroom are re-checked.
func (s *Supervisor) arbiterLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.arbStop:
			return
		case now := <-t.C:
			d := s.arb.Tick(now.UnixNano())
			for _, id := range d.Suspend {
				// Best effort: the victim may have finished or been
				// cancelled between selection and here.
				_ = s.suspend(id, "arbiter: sustained memory pressure")
			}
			s.mu.Lock()
			s.qcond.Broadcast()
			s.mu.Unlock()
		}
	}
}

// stopArbiter ends the tick loop; no further suspensions are initiated.
func (s *Supervisor) stopArbiter() {
	if s.arb == nil {
		return
	}
	s.arbOnce.Do(func() { close(s.arbStop) })
}

// Adoption is one run lifted from a replayed journal — the unit of both
// self-recovery (New replaying its own journal) and cross-shard handoff
// (a federation successor adopting a dead peer's journal via Adopt).
type Adoption struct {
	ID   uint64
	Spec RunSpec
	// Key is the run's idempotency key, if one was journaled — it travels
	// through handoff so a retry landing on the adopting shard still dedups.
	Key         string
	Demand      int64
	Attempts    int    // started records seen before the kill
	Checkpoints int    // checkpoint records seen
	Suspends    int    // arbiter suspension records seen
	Resume      []byte // latest checkpoint payload; nil = cold start
	// Terminal marks a run that already finished (or whose spec record is
	// undecodable): it is adopted as history and never re-executed.
	Terminal bool
	State    RunState
	Reason   string
	Outcome  *Outcome
}

// AdoptionFolder folds journal records into per-run adoptions one record
// at a time. It keeps only the latest checkpoint payload per run — not the
// full checkpoint history a journal accumulates — so replaying through a
// folder (journal.OpenStream or journal.ReplayStreamFile feeding Add) runs
// in space proportional to the number of runs, not the journal's size.
type AdoptionFolder struct {
	ghosts map[uint64]*ghost
	order  []uint64
}

type ghost struct {
	spec     journalSpec
	specOK   bool
	key      string
	started  int
	ckpt     []byte
	ckpts    int
	suspends int
	finish   *journalFinish
}

// NewAdoptionFolder returns an empty folder.
func NewAdoptionFolder() *AdoptionFolder {
	return &AdoptionFolder{ghosts: map[uint64]*ghost{}}
}

// Add folds one replayed record into the per-run state.
func (f *AdoptionFolder) Add(rec journal.Record) {
	g := f.ghosts[rec.RunID]
	if g == nil {
		g = &ghost{}
		f.ghosts[rec.RunID] = g
	}
	switch rec.Type {
	case journal.RecSubmitted:
		if json.Unmarshal(rec.Data, &g.spec) == nil {
			g.specOK = true
		}
		f.order = append(f.order, rec.RunID)
	case journal.RecStarted:
		g.started++
	case journal.RecCheckpointed:
		// Latest wins; the superseded payload is garbage immediately, which
		// is the whole point of folding instead of materializing.
		g.ckpt = rec.Data
		g.ckpts++
	case journal.RecFinished:
		var fin journalFinish
		if json.Unmarshal(rec.Data, &fin) == nil {
			g.finish = &fin
		}
	case journal.RecAdmissionKey:
		// The key record precedes the run's spec record; a key-only ghost
		// (crash between the two appends) never enters f.order and is
		// dropped — a client retry then creates exactly one run.
		g.key = string(rec.Data)
	case journal.RecSuspended:
		// Non-terminal by design: a run whose last lifecycle record is a
		// suspension folds exactly like an interrupted one — requeued and
		// resumed from its latest checkpoint — so both self-recovery and a
		// federation handoff adopt suspended runs with no special casing.
		g.suspends++
	}
}

// Adoptions assembles the folded state, in first-submission order: latest
// checkpoint per run, the terminal state for finished runs, a queued
// adoption for everything that was in flight or waiting when the journal's
// writer died.
func (f *AdoptionFolder) Adoptions() []Adoption {
	out := make([]Adoption, 0, len(f.order))
	for _, id := range f.order {
		g := f.ghosts[id]
		a := Adoption{
			ID:          id,
			Spec:        g.spec.Spec,
			Key:         g.key,
			Demand:      g.spec.Demand,
			Attempts:    g.started,
			Checkpoints: g.ckpts,
			Suspends:    g.suspends,
		}
		switch {
		case !g.specOK:
			// CRC said the record was intact, so this is a version-skew
			// style failure; surface it rather than dropping the run.
			reason := "journal replay: undecodable spec"
			a.Terminal, a.State, a.Reason = true, StateFailed, reason
			a.Outcome = &Outcome{Status: string(StateFailed), Error: reason}
		case g.finish != nil:
			a.Terminal, a.State, a.Reason = true, g.finish.State, g.finish.Reason
			a.Outcome = g.finish.Outcome
		default:
			a.Resume = g.ckpt
		}
		out = append(out, a)
	}
	return out
}

// AdoptionsFromRecords folds already-materialized records (see
// AdoptionFolder; prefer streaming when the records come from a file).
func AdoptionsFromRecords(recs []journal.Record) []Adoption {
	f := NewAdoptionFolder()
	for _, rec := range recs {
		f.Add(rec)
	}
	return f.Adoptions()
}

// ReplayJournal reads the journal at path read-only — torn tail tolerated,
// file untouched — and returns its runs as adoptions plus the replay
// stats. It is the first half of a cross-shard handoff: a federation
// replays a dead shard's journal and feeds the adoptions to a live peer's
// Adopt. The replay streams: checkpoint history beyond the latest per run
// is never resident.
func ReplayJournal(path string) ([]Adoption, journal.ReplayStats, error) {
	f := NewAdoptionFolder()
	stats, err := journal.ReplayStreamFile(path, func(rec journal.Record) error {
		f.Add(rec)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return f.Adoptions(), stats, nil
}

// AdoptReport summarizes one Adopt call.
type AdoptReport struct {
	// Queued counts non-terminal runs re-admitted to the worker pool.
	Queued int
	// Resumed counts the Queued runs that carry a checkpoint to resume
	// from (the rest start cold).
	Resumed int
	// Finished counts terminal runs adopted as history.
	Finished int
	// Skipped counts run IDs this supervisor already knew — a re-played
	// handoff is idempotent, never a duplicate execution.
	Skipped int
}

// Adopt takes ownership of runs replayed from a dead peer's journal:
// terminal runs become local history, interrupted and queued runs are
// re-admitted (bypassing the queue-depth bound — they were admitted once
// already) with their latest checkpoint as resume state. Every adopted
// run is written ahead to this supervisor's own journal first, so the
// handoff itself survives a subsequent kill. Runs whose ID is already
// known are skipped, which makes a replayed or crashed-and-retried
// handoff idempotent.
func (s *Supervisor) Adopt(adoptions []Adoption) (AdoptReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep AdoptReport
	if s.draining || s.killed {
		return rep, ErrShuttingDown
	}
	for _, a := range adoptions {
		if _, exists := s.runs[a.ID]; exists {
			rep.Skipped++
			continue
		}
		queued, err := s.admitAdoptionLocked(a, true)
		if err != nil {
			return rep, err
		}
		switch {
		case !queued:
			rep.Finished++
		default:
			rep.Queued++
			if len(a.Resume) > 0 {
				rep.Resumed++
			}
		}
	}
	return rep, nil
}

// admitAdoptionLocked inserts one adopted run. journalIt re-journals the
// run into this supervisor's own journal (cross-shard handoff); replay of
// our own journal passes false because the records are already there.
// Caller holds mu (or is inside New, before any concurrency). Reports
// whether the run was queued for execution (vs adopted as history).
func (s *Supervisor) admitAdoptionLocked(a Adoption, journalIt bool) (bool, error) {
	if a.ID >= s.nextID {
		s.nextID = a.ID + 1
	}
	if journalIt {
		if a.Key != "" {
			// Key before spec, same write-ahead order as a fresh submit, so
			// a crash mid-handoff leaves a droppable dangling key, never a
			// keyless (re-executable) run.
			if err := s.appendLocked(journal.Record{Type: journal.RecAdmissionKey, RunID: a.ID, Data: []byte(a.Key)}); err != nil {
				return false, err
			}
		}
		data, err := json.Marshal(journalSpec{Spec: a.Spec, Demand: a.Demand})
		if err != nil {
			return false, fmt.Errorf("supervisor: encoding adopted spec: %w", err)
		}
		if err := s.appendLocked(journal.Record{Type: journal.RecSubmitted, RunID: a.ID, Data: data}); err != nil {
			return false, err
		}
		if len(a.Resume) > 0 {
			// A handed-off resume may already be a store reference (the dead
			// peer shared our store) — pass it through untouched, 16 bytes.
			// An inline blob goes through the store like any fresh
			// checkpoint, shrinking the re-journaled record too.
			data := a.Resume
			if _, isRef := store.DecodeRef(data); !isRef {
				data = s.checkpointPayloadLocked(data)
			}
			if err := s.appendLocked(journal.Record{Type: journal.RecCheckpointed, RunID: a.ID, Data: data}); err != nil {
				return false, err
			}
		}
	}
	r := &run{
		class: classBestEffort,
		info: RunInfo{
			ID:          a.ID,
			Spec:        a.Spec,
			Demand:      a.Demand,
			Attempts:    a.Attempts,
			Checkpoints: a.Checkpoints,
			Suspends:    a.Suspends,
			Submitted:   s.epoch,
		},
		done: make(chan struct{}),
	}
	if a.Key != "" {
		// Terminal runs bind too: a retry after completion must resolve to
		// the original run (and its outcome), not execute a duplicate.
		s.keys.Bind(a.Key, a.ID)
	}
	if a.Terminal {
		r.info.State = a.State
		r.info.Reason = a.Reason
		r.info.Outcome = a.Outcome
		if journalIt {
			if data, err := json.Marshal(journalFinish{State: a.State, Reason: a.Reason, Outcome: a.Outcome}); err == nil {
				_ = s.appendLocked(journal.Record{Type: journal.RecFinished, RunID: a.ID, Data: data})
			}
		}
		close(r.done)
	} else {
		r.info.State = StateQueued
		r.resume = a.Resume
		s.committed += a.Demand
		s.adopted++
		s.record("", StateQueued, fmt.Sprintf("journal replay (attempt %d)", a.Attempts+1))
		s.queued = append(s.queued, a.ID)
		s.qcond.Signal()
	}
	s.runs[a.ID] = r
	s.order = append(s.order, a.ID)
	return !a.Terminal, nil
}

// Submit admits one run, returning its ID. Rejections are typed:
// *QueueFullError (backpressure), *QuotaError (over the per-run quota or
// the committed budget), ErrShuttingDown. Submit never blocks.
func (s *Supervisor) Submit(spec RunSpec) (uint64, error) {
	return s.SubmitID(0, spec)
}

// SubmitID is Submit with a caller-assigned run ID (the federation
// front-end assigns globally-unique IDs and routes them by consistent
// hash; a standalone supervisor passes 0 to get the next local ID). A
// non-zero id that is already known is rejected — run IDs are never
// reused.
func (s *Supervisor) SubmitID(id uint64, spec RunSpec) (uint64, error) {
	got, _, err := s.SubmitWithOptions(id, spec, SubmitOptions{})
	return got, err
}

// SubmitOptions carries the retry-safety extras a submission may attach.
type SubmitOptions struct {
	// Key is a client-supplied idempotency key (see admission.ValidateKey).
	// A submission whose key is already bound — by an earlier attempt, a
	// journal replay, or an adopted handoff — returns the bound run's ID
	// with dedup=true instead of admitting a duplicate. Empty disables
	// deduplication.
	Key string
	// Deadline is the client's propagated wait budget. A submission the
	// shedder predicts cannot start within it is rejected with *ShedError.
	// 0 means no deadline: never shed.
	Deadline time.Duration
	// Priority, when non-zero, overrides RunSpec.Priority — the arbiter
	// priority class under oversubscription (higher = more important;
	// victims are picked lowest-priority first).
	Priority int
}

// SubmitWithOptions is SubmitID plus idempotency and deadline handling.
// dedup reports that the returned ID is an existing run the key resolved
// to (no new admission happened — the caller should fetch that run's
// state, which may already be terminal). Dedup hits are read-only and
// succeed even while draining; only fresh admissions are rejected then.
func (s *Supervisor) SubmitWithOptions(id uint64, spec RunSpec, opts SubmitOptions) (uint64, bool, error) {
	if opts.Key != "" {
		if err := admission.ValidateKey(opts.Key); err != nil {
			s.noteSubmission("error")
			return 0, false, err
		}
		// Fast path: a bound key resolves before estimation, quota, and
		// drain checks ever run — a retry must succeed whatever the door's
		// current state is.
		if prev, ok := s.keys.Lookup(opts.Key); ok {
			s.noteDedup()
			return prev, true, nil
		}
	}
	if opts.Priority != 0 {
		spec.Priority = opts.Priority
	}
	demand := spec.MemoryDemand
	if demand == 0 && s.cfg.Estimate != nil {
		d, err := s.cfg.Estimate(spec)
		if err != nil {
			s.noteSubmission("error")
			return 0, false, fmt.Errorf("supervisor: estimating memory demand: %w", err)
		}
		demand = d
	}
	spec.MemoryDemand = demand

	s.mu.Lock()
	defer s.mu.Unlock()
	if opts.Key != "" {
		// Re-check under the admission lock: a concurrent submit with the
		// same key may have bound it between the fast path and here.
		if prev, ok := s.keys.Lookup(opts.Key); ok {
			s.noteDedup()
			return prev, true, nil
		}
	}
	if s.draining || s.killed {
		s.noteSubmission("shutting_down")
		return 0, false, ErrShuttingDown
	}
	if s.cfg.PerRunQuota > 0 && demand > s.cfg.PerRunQuota {
		// With oversubscription on, PerRunQuota defaults to the whole
		// budget, so this fires only for runs that could never fit the
		// device even alone — the one rejection the arbiter cannot argue
		// with.
		s.noteSubmission("quota")
		return 0, false, &QuotaError{Demand: demand, Limit: s.cfg.PerRunQuota, PerRun: true}
	}
	if s.arb == nil && s.cfg.GPUMemoryBudget > 0 && s.committed+demand > s.cfg.GPUMemoryBudget {
		// The hard aggregate rejection. Under oversubscription the arbiter
		// admits past the budget and keeps everyone alive by soft grants,
		// revocation, and suspend-to-checkpoint instead.
		s.noteSubmission("quota")
		return 0, false, &QuotaError{Demand: demand, Limit: s.cfg.GPUMemoryBudget, Committed: s.committed}
	}
	// Deadline-aware shedding: admitting a run whose client will have
	// abandoned it by the time it starts only burns a worker slot.
	if err := s.shedder.Decide(len(s.queued), opts.Deadline); err != nil {
		s.noteSubmission("shed")
		s.prom.Counter("deepum_admission_shed_total", "", nil).Inc()
		return 0, false, err
	}
	// Submissions respect the queue-depth bound (backpressure); only
	// replay and adoption may push past it.
	if len(s.queued) >= s.cfg.QueueDepth {
		s.noteSubmission("queue_full")
		return 0, false, &QueueFullError{Depth: s.cfg.QueueDepth, RetryAfter: s.shedder.RetryAfter(len(s.queued))}
	}
	if id == 0 {
		id = s.nextID
	} else if _, exists := s.runs[id]; exists {
		s.noteSubmission("error")
		return 0, false, fmt.Errorf("supervisor: run id %d already exists", id)
	}
	data, err := json.Marshal(journalSpec{Spec: spec, Demand: demand})
	if err != nil {
		s.noteSubmission("error")
		return 0, false, fmt.Errorf("supervisor: encoding spec: %w", err)
	}
	if opts.Key != "" {
		// Key record BEFORE the spec record: a crash between the two leaves
		// a dangling key that replay drops, so the client's retry creates
		// exactly one run. The reverse order would leave a keyless run the
		// retry duplicates.
		if err := s.appendLocked(journal.Record{Type: journal.RecAdmissionKey, RunID: id, Data: []byte(opts.Key)}); err != nil {
			s.noteSubmission("error")
			return 0, false, err
		}
	}
	if err := s.appendLocked(journal.Record{Type: journal.RecSubmitted, RunID: id, Data: data}); err != nil {
		s.noteSubmission("error")
		return 0, false, err
	}
	if opts.Key != "" {
		s.keys.Bind(opts.Key, id)
	}
	if id >= s.nextID {
		s.nextID = id + 1
	}
	class := classBestEffort
	if opts.Deadline > 0 {
		class = classDeadline
	}
	r := &run{
		class: class,
		info:  RunInfo{ID: id, Spec: spec, Demand: demand, State: StateQueued, Submitted: time.Now()},
		done:  make(chan struct{}),
	}
	s.runs[id] = r
	s.order = append(s.order, id)
	s.committed += demand
	s.record("", StateQueued, "submitted")
	s.noteSubmission("accepted")
	s.queued = append(s.queued, id)
	s.qcond.Signal()
	return id, false, nil
}

// LookupKey resolves an idempotency key to the run it is bound to.
func (s *Supervisor) LookupKey(key string) (uint64, bool) {
	return s.keys.Lookup(key)
}

// AdmissionKeys snapshots the key table (the federation rebuilds its
// global key map from shard snapshots at restart).
func (s *Supervisor) AdmissionKeys() map[string]uint64 {
	return s.keys.Snapshot()
}

// RetryAfterHint prices a jittered backoff hint from the shedder's drain
// model for rejection paths that carry no typed Retry-After of their own
// (drain, handoff windows).
func (s *Supervisor) RetryAfterHint() time.Duration {
	s.mu.Lock()
	n := len(s.queued)
	s.mu.Unlock()
	return s.shedder.RetryAfter(n)
}

// worker drains the submission queue until Drain or Kill closes it; a
// closing queue is still drained to empty so Drain finishes queued work.
func (s *Supervisor) worker(n int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var id uint64
		for {
			id = s.popRunnableLocked()
			if id != 0 {
				break
			}
			if s.qclosed && len(s.queued) == 0 {
				s.mu.Unlock()
				return
			}
			s.qcond.Wait()
		}
		s.mu.Unlock()
		s.execute(n, id)
	}
}

// popRunnableLocked pops the first queue entry that may execute now. Fresh
// runs always may; suspended runs are gated on the arbiter's raw resume
// headroom (bypassed once the queue is closed — drain must finish them —
// and for runs an operator forced via Resume). Returns 0 when nothing is
// runnable; the arbiter tick loop broadcasts qcond so gated entries are
// re-checked as pressure relaxes. Caller holds mu. Run IDs start at 1, so
// 0 is a safe sentinel.
func (s *Supervisor) popRunnableLocked() uint64 {
	for i, id := range s.queued {
		if r := s.runs[id]; r != nil && r.info.State == StateSuspended &&
			!r.force && !s.qclosed && !s.arb.CanResume(r.info.Demand) {
			continue
		}
		s.queued = append(s.queued[:i], s.queued[i+1:]...)
		if len(s.queued) == 0 {
			s.queued = nil // release the drained backing array
		}
		return id
	}
	return 0
}

// execute runs one queued run to a terminal state, surviving runner panics.
func (s *Supervisor) execute(n int, id uint64) {
	s.mu.Lock()
	r := s.runs[id]
	if r == nil || (r.info.State != StateQueued && r.info.State != StateSuspended) || s.killed {
		// Cancelled while queued (already finalized) or hard-stopped.
		s.mu.Unlock()
		return
	}
	fromState := r.info.State
	resumedFromSuspend := fromState == StateSuspended
	r.force = false
	ctx, cancel := context.WithCancel(context.Background())
	if s.arb != nil {
		gaugeID := id
		ctx = context.WithValue(ctx, pressureCtxKey{},
			func() float64 { return s.arb.PressureFor(gaugeID) })
	}
	r.cancel = cancel
	r.info.State = StateRunning
	now := time.Now()
	// One queue departure: feed the shedder's drain model and the per-class
	// queue-wait histogram (adoptions carry the epoch as Submitted, so the
	// clamp guards skewed or replayed timestamps). A resumption of a
	// suspended run is not an admission — it would poison both models.
	if wait := now.Sub(r.info.Submitted); wait >= 0 && !resumedFromSuspend {
		s.shedder.ObserveStart(wait)
		s.prom.Histogram("deepum_admission_queue_wait_seconds", "",
			map[string]string{"class": r.class}, queueWaitBuckets).Observe(wait.Seconds())
	}
	if resumedFromSuspend {
		s.resumes++
	}
	s.arb.Acquire(now.UnixNano(), id, r.info.Demand, r.info.Spec.Priority)
	r.info.Started = &now
	r.info.Attempts++
	resume := s.resolveResumeLocked(id, r.resume)
	r.resume = resume // a resolved (or degraded) reference stays resolved
	r.info.Resumed = resume != nil
	r.heartbeat.Store(now.UnixNano())
	panicNow := s.cfg.Chaos.Active() && s.rng.Float64() < s.cfg.Chaos.WorkerPanicProb
	jerr := s.appendLocked(journal.Record{Type: journal.RecStarted, RunID: id})
	s.record(fromState, StateRunning, fmt.Sprintf("worker %d", n))
	timeout := r.info.Spec.Timeout
	if timeout <= 0 {
		timeout = s.cfg.WatchdogTimeout
	}
	s.mu.Unlock()
	defer cancel()

	if jerr != nil {
		s.finalize(r, Outcome{}, fmt.Errorf("journal write-ahead failed: %w", jerr), false)
		return
	}
	if timeout > 0 {
		go s.watchdog(r, timeout)
	}

	var out Outcome
	var runErr error
	panicked := false
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				runErr = fmt.Errorf("worker panic: %v", p)
			}
		}()
		if panicNow {
			panic("chaos: worker panic mid-run")
		}
		progress := func(ck []byte) { s.progress(r, ck) }
		if lr, ok := s.cfg.Runner.(LiveRunner); ok && r.info.Spec.Health {
			out, runErr = lr.RunLive(ctx, r.info.Spec, resume, progress,
				func(level int) { s.noteHealth(r, level) })
		} else {
			out, runErr = s.cfg.Runner.Run(ctx, r.info.Spec, resume, progress)
		}
	}()
	s.finalize(r, out, runErr, panicked)
}

// progress is the runner's liveness and checkpoint callback: every call
// feeds the watchdog heartbeat; non-nil checkpoint bytes are journaled
// (write-ahead) and become the state a restarted supervisor resumes from.
func (s *Supervisor) progress(r *run, ck []byte) {
	r.heartbeat.Store(time.Now().UnixNano())
	if ck == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed || r.info.State.Terminal() {
		return
	}
	if err := s.appendLocked(journal.Record{Type: journal.RecCheckpointed, RunID: r.info.ID, Data: s.checkpointPayloadLocked(ck)}); err != nil {
		// A checkpoint that failed to persist is not a run failure; the
		// run merely loses resume granularity. Keep the bytes in memory.
		s.record(StateRunning, StateRunning, "checkpoint journal append failed")
	}
	r.resume = ck
	r.info.Checkpoints++
}

// checkpointPayloadLocked is what goes into a RecCheckpointed record: a
// 16-byte store reference when the configured store accepted the blob, the
// inline blob otherwise (no store, a full disk, a detected hash
// collision). Callers journal the result; caller holds mu.
func (s *Supervisor) checkpointPayloadLocked(ck []byte) []byte {
	if s.cfg.Checkpoints == nil {
		return ck
	}
	key, err := s.cfg.Checkpoints.Put(ck)
	if err != nil {
		s.ckptInlined++
		return ck
	}
	s.ckptStored++
	return store.EncodeRef(key)
}

// resolveResumeLocked turns journaled resume state into the bytes a runner
// can consume: inline payloads pass through, store references are
// dereferenced. A reference that cannot be resolved — no store configured
// here, blob scrub-degraded or compacted away, content verification
// failed — degrades to nil, a cold restart: slower, never resumed from
// corrupt state. Caller holds mu.
func (s *Supervisor) resolveResumeLocked(id uint64, data []byte) []byte {
	key, ok := store.DecodeRef(data)
	if !ok {
		return data
	}
	if s.cfg.Checkpoints == nil {
		s.coldRestarts++
		s.record(StateQueued, StateQueued, fmt.Sprintf("run %d: checkpoint reference %s with no store; cold restart", id, key))
		return nil
	}
	blob, err := s.cfg.Checkpoints.Get(key)
	if err != nil {
		s.coldRestarts++
		s.record(StateQueued, StateQueued, fmt.Sprintf("run %d: checkpoint %s unresolvable (%v); cold restart", id, key, err))
		return nil
	}
	return blob
}

// watchdog cancels the run when no heartbeat arrives for timeout. It polls
// at a quarter of the timeout so detection latency stays proportional.
func (s *Supervisor) watchdog(r *run, timeout time.Duration) {
	tick := time.NewTicker(max(timeout/4, time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			last := time.Unix(0, r.heartbeat.Load())
			if silent := time.Since(last); silent > timeout {
				if s.cancelRun(r, fmt.Sprintf("watchdog: no progress for %v (timeout %v)", silent.Round(time.Millisecond), timeout)) {
					s.prom.Counter("deepum_supervisor_watchdog_cancels_total", "", nil).Inc()
				}
				return
			}
		}
	}
}

// cancelRun cancels a running run's context with a reason; no-op for runs
// that are not running. Reports whether it actually cancelled.
func (s *Supervisor) cancelRun(r *run, reason string) bool {
	s.mu.Lock()
	if r.info.State != StateRunning {
		s.mu.Unlock()
		return false
	}
	if r.cancelReason == "" {
		r.cancelReason = reason
	}
	cancel := r.cancel
	s.mu.Unlock()
	cancel()
	return true
}

// finalize moves a run to its terminal state, journals the finish, and
// releases its quota.
func (s *Supervisor) finalize(r *run, out Outcome, runErr error, panicked bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.info.State.Terminal() {
		return
	}
	s.arb.Release(time.Now().UnixNano(), r.info.ID)
	// Suspend-to-checkpoint: a clean interruption requested by the arbiter
	// (or the Suspend API) is not terminal. The runner's partial outcome
	// carries the warm state; journal it plus a suspension record, return
	// the run to the queue tail, and leave everything an exactly-once
	// restart needs — committed demand, the done channel, the idempotency
	// binding — untouched. A real cancellation (API, watchdog, drain
	// escalation, kill) always wins over a pending suspension, and a
	// runner that completed before noticing the cancel stays completed.
	if r.suspendReason != "" && r.cancelReason == "" && !s.killed &&
		runErr == nil && !panicked && RunState(out.Status) == StateCancelled {
		if len(out.Checkpoint) > 0 {
			if s.appendLocked(journal.Record{Type: journal.RecCheckpointed, RunID: r.info.ID, Data: s.checkpointPayloadLocked(out.Checkpoint)}) == nil {
				r.resume = out.Checkpoint
				r.info.Checkpoints++
			}
		}
		reason := r.suspendReason
		_ = s.appendLocked(journal.Record{Type: journal.RecSuspended, RunID: r.info.ID, Data: []byte(reason)})
		r.suspendReason = ""
		r.cancel = nil
		r.info.State = StateSuspended
		r.info.Reason = reason
		r.info.Suspends++
		s.suspends++
		s.record(StateRunning, StateSuspended, reason)
		s.queued = append(s.queued, r.info.ID)
		s.qcond.Broadcast()
		return
	}
	r.suspendReason = ""
	var state RunState
	switch {
	case runErr != nil || panicked:
		state = StateFailed
		out.Status = string(StateFailed)
		out.Error = runErr.Error()
	default:
		switch RunState(out.Status) {
		case StateCompleted, StateCancelled, StateDeadlineExceeded, StateDegraded:
			state = RunState(out.Status)
		default:
			state = StateFailed
			out.Error = fmt.Sprintf("runner reported unknown status %q", out.Status)
			out.Status = string(StateFailed)
		}
	}
	r.info.State = state
	r.info.Reason = r.cancelReason
	now := time.Now()
	r.info.Finished = &now
	r.info.Outcome = &out
	if len(out.Checkpoint) > 0 {
		if s.appendLocked(journal.Record{Type: journal.RecCheckpointed, RunID: r.info.ID, Data: s.checkpointPayloadLocked(out.Checkpoint)}) == nil {
			r.resume = out.Checkpoint
			r.info.Checkpoints++
		}
	}
	if data, err := json.Marshal(journalFinish{State: state, Reason: r.info.Reason, Outcome: &out}); err == nil {
		// Best effort: a failed finish append means the next replay re-runs
		// this run — at-least-once, never lost.
		_ = s.appendLocked(journal.Record{Type: journal.RecFinished, RunID: r.info.ID, Data: data})
	}
	s.committed -= r.info.Demand
	reason := r.cancelReason
	if reason == "" {
		reason = "runner returned"
	}
	s.record(StateRunning, state, reason)
	if panicked {
		s.prom.Counter("deepum_supervisor_worker_panics_total", "", nil).Inc()
	}
	s.noteFinished(state, r.info.Started, now)
	close(r.done)
	s.maybeStoreGC()
}

// finalizeQueuedLocked cancels a run that never started (or is suspended,
// waiting to resume). Caller holds mu.
func (s *Supervisor) finalizeQueuedLocked(r *run, reason string) {
	from := r.info.State
	out := &Outcome{Status: string(StateCancelled)}
	r.info.State = StateCancelled
	r.info.Reason = reason
	now := time.Now()
	r.info.Finished = &now
	r.info.Outcome = out
	if data, err := json.Marshal(journalFinish{State: StateCancelled, Reason: reason, Outcome: out}); err == nil {
		_ = s.appendLocked(journal.Record{Type: journal.RecFinished, RunID: r.info.ID, Data: data})
	}
	s.committed -= r.info.Demand
	s.record(from, StateCancelled, reason)
	s.noteFinished(StateCancelled, r.info.Started, now)
	close(r.done)
}

// Cancel stops a run: a queued run is finalized immediately, a running run
// has its context cancelled (the runner winds down and reports a partial
// outcome). Terminal runs return ErrAlreadyFinished.
func (s *Supervisor) Cancel(id uint64) error {
	s.mu.Lock()
	r, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return &NotFoundError{ID: id}
	}
	switch r.info.State {
	case StateQueued, StateSuspended:
		// A suspended run sits in the queue like a queued one; its stale
		// queue entry is skipped by execute after finalization here.
		s.finalizeQueuedLocked(r, "cancelled by api")
		s.mu.Unlock()
		return nil
	case StateRunning:
		if r.cancelReason == "" {
			r.cancelReason = "cancelled by api"
		}
		cancel := r.cancel
		s.mu.Unlock()
		cancel()
		return nil
	default:
		s.mu.Unlock()
		return ErrAlreadyFinished
	}
}

// Suspend checkpoints a running run out of execution and returns it to the
// queue (the arbiter's last escalation rung, also exposed for operators and
// deterministic tests). The runner is cancelled; when it reports its warm
// partial outcome, finalize journals the checkpoint plus a suspension
// record and the run becomes StateSuspended — resumable, never lost.
// Returns ErrNotRunning for runs not currently executing.
func (s *Supervisor) Suspend(id uint64) error { return s.suspend(id, "suspended by api") }

// suspend requests a suspend-to-checkpoint with the given reason.
func (s *Supervisor) suspend(id uint64, reason string) error {
	s.mu.Lock()
	r, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return &NotFoundError{ID: id}
	}
	if r.info.State != StateRunning || s.draining || s.killed {
		s.mu.Unlock()
		return ErrNotRunning
	}
	if r.suspendReason == "" {
		r.suspendReason = reason
	}
	cancel := r.cancel
	s.mu.Unlock()
	cancel()
	return nil
}

// Resume forces a suspended run back to the front of the queue, bypassing
// the arbiter's headroom gate once (an operator override; organic
// resumption happens automatically as pressure relaxes). Returns
// ErrNotSuspended when the run is not suspended.
func (s *Supervisor) Resume(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return &NotFoundError{ID: id}
	}
	if r.info.State != StateSuspended {
		return ErrNotSuspended
	}
	r.force = true
	for i, q := range s.queued {
		if q == id {
			s.queued = append(s.queued[:i], s.queued[i+1:]...)
			break
		}
	}
	s.queued = append([]uint64{id}, s.queued...)
	s.qcond.Broadcast()
	return nil
}

// Get snapshots one run.
func (s *Supervisor) Get(id uint64) (RunInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return RunInfo{}, &NotFoundError{ID: id}
	}
	return r.info, nil
}

// List snapshots every run in submission order.
func (s *Supervisor) List() []RunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id].info)
	}
	return out
}

// Wait blocks until the run is terminal (convenience for tests and the
// serve command's synchronous mode).
func (s *Supervisor) Wait(id uint64) (RunInfo, error) {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return RunInfo{}, &NotFoundError{ID: id}
	}
	<-r.done
	return s.Get(id)
}

// Done returns a channel closed when the run reaches a terminal state on
// THIS supervisor. Beware: on a killed supervisor, still-queued runs never
// reach one here — select on Killed() too (the federation does; the run
// finishes on whichever peer adopts it).
func (s *Supervisor) Done(id uint64) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, &NotFoundError{ID: id}
	}
	return r.done, nil
}

// Killed returns a channel closed when the supervisor is hard-killed.
// In-memory state after the close is untrustworthy — the journal is the
// truth, and a federation waiter must re-resolve the run's owner after a
// handoff rather than believe this supervisor's snapshot.
func (s *Supervisor) Killed() <-chan struct{} { return s.killedCh }

// Stats is a point-in-time aggregate of the supervisor.
type Stats struct {
	Queued, Running, Terminal int
	// Suspended counts runs the arbiter checkpointed out of execution that
	// are waiting (in the queue) to resume.
	Suspended int
	// CommittedBytes is the simulated GPU memory pledged to admitted runs.
	CommittedBytes int64
	// Budget and PerRunQuota echo the effective quota configuration.
	Budget, PerRunQuota int64
	QueueCap            int
	Workers             int
	Draining            bool
	// Recovered counts runs re-admitted from this supervisor's own
	// journal replay at construction.
	Recovered int
	// Adopted counts runs taken over from dead peers' journals via Adopt
	// (federation handoff), terminal history excluded.
	Adopted int
	// CheckpointsStored counts checkpoints journaled as store references;
	// CheckpointsInlined counts store rejections that fell back to inline
	// payloads (both 0 without a configured store).
	CheckpointsStored  int
	CheckpointsInlined int
	// ColdRestarts counts runs whose checkpoint reference no longer
	// resolved at execute time and restarted cold instead — degraded,
	// never resumed from corrupt state.
	ColdRestarts int
	// DedupHits counts retried submissions resolved to an existing run by
	// idempotency key; Sheds counts deadline-based admission rejections;
	// AdmissionKeys is the number of bound idempotency keys.
	DedupHits     int64
	Sheds         int64
	AdmissionKeys int
	// Suspends counts suspend-to-checkpoint cycles; Resumes counts
	// suspended runs re-entering execution.
	Suspends int64
	Resumes  int64
	// Arbiter is the oversubscription arbiter's ledger snapshot (zero when
	// Oversubscribe is off).
	Arbiter arbiter.Stats
	// StoreGCs counts background checkpoint-store compactions;
	// StoreGCReclaimed is the total bytes they reclaimed.
	StoreGCs         int64
	StoreGCReclaimed int64
}

// Stats snapshots the aggregate state.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		CommittedBytes:     s.committed,
		Budget:             s.cfg.GPUMemoryBudget,
		PerRunQuota:        s.cfg.PerRunQuota,
		QueueCap:           s.cfg.QueueDepth,
		Workers:            s.cfg.Workers,
		Draining:           s.draining || s.killed,
		Recovered:          s.recovered,
		Adopted:            s.adopted,
		CheckpointsStored:  s.ckptStored,
		CheckpointsInlined: s.ckptInlined,
		ColdRestarts:       s.coldRestarts,
		DedupHits:          s.dedupHits.Load(),
		Sheds:              s.shedder.Stats().Sheds,
		AdmissionKeys:      s.keys.Len(),
		Suspends:           s.suspends,
		Resumes:            s.resumes,
		Arbiter:            s.arb.Stats(),
		StoreGCs:           s.gcRuns.Load(),
		StoreGCReclaimed:   s.gcReclaimed.Load(),
	}
	for _, r := range s.runs {
		switch r.info.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateSuspended:
			st.Suspended++
		default:
			st.Terminal++
		}
	}
	return st
}

// Transitions returns the run-state transition log (timestamps are
// nanoseconds since the supervisor started).
func (s *Supervisor) Transitions() []metrics.StateTransition { return s.log.Transitions() }

// Accepting reports whether Submit would be considered at all (the
// /readyz signal): false once draining or killed.
func (s *Supervisor) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.killed
}

// Drain shuts down gracefully: admission stops (ErrShuttingDown), queued
// and running runs finish normally. If ctx expires first, the drain
// escalates — queued runs are cancelled outright and running runs have
// their contexts cancelled — and Drain still waits for the workers to wind
// down before closing the journal. Safe to call more than once.
func (s *Supervisor) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.qclosed = true
	s.qcond.Broadcast()
	s.mu.Unlock()
	s.stopArbiter()
	s.waitWG.Do(func() {
		go func() {
			s.wg.Wait()
			close(s.workersDone)
		}()
	})
	var err error
	select {
	case <-s.workersDone:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll("drain deadline exceeded")
		<-s.workersDone
	}
	s.mu.Lock()
	if s.jl != nil && !s.jlClosed {
		s.jlClosed = true
		s.jl.Close()
	}
	s.mu.Unlock()
	return err
}

// Kill hard-stops the supervisor, simulating a process kill for the
// crash-recovery tests: in-flight runs are interrupted and NOTHING more is
// journaled — no finish records, exactly as if the process died — so a
// supervisor reopened on the same journal must recover them by replay.
func (s *Supervisor) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	s.qclosed = true
	close(s.killedCh)
	s.qcond.Broadcast()
	var cancels []context.CancelFunc
	for _, r := range s.runs {
		if r.info.State == StateRunning && r.cancel != nil {
			if r.cancelReason == "" {
				r.cancelReason = "killed"
			}
			cancels = append(cancels, r.cancel)
		}
	}
	s.mu.Unlock()
	s.stopArbiter()
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
	s.mu.Lock()
	if s.jl != nil && !s.jlClosed {
		s.jlClosed = true
		s.jl.Close()
	}
	s.mu.Unlock()
}

// cancelAll escalates a timed-out drain.
func (s *Supervisor) cancelAll(reason string) {
	s.mu.Lock()
	var cancels []context.CancelFunc
	for _, r := range s.runs {
		switch r.info.State {
		case StateQueued:
			s.finalizeQueuedLocked(r, reason)
		case StateRunning:
			if r.cancelReason == "" {
				r.cancelReason = reason
			}
			if r.cancel != nil {
				cancels = append(cancels, r.cancel)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// appendLocked journals one record; caller holds mu. A killed supervisor
// journals nothing (the kill-9 contract); a journal-less supervisor
// appends nowhere successfully.
func (s *Supervisor) appendLocked(rec journal.Record) error {
	if s.jl == nil || s.killed || s.jlClosed {
		return nil
	}
	return s.jl.Append(rec)
}

// record logs one state transition (at = ns since supervisor start).
func (s *Supervisor) record(from, to RunState, reason string) {
	s.log.Record(time.Since(s.epoch).Nanoseconds(), string(from), string(to), reason)
}
