package supervisor

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"deepum/internal/store"
	"deepum/internal/supervisor/journal"
)

func openTestStore(t *testing.T, path string) *store.Store {
	t.Helper()
	st, _, err := store.Open(path, store.Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreKillRestartResume is the checkpoint-store acceptance test: with
// a store configured, the journal carries 16-byte references instead of
// checkpoint blobs, and a killed supervisor restarted on the same journal
// and store resumes interrupted runs from the exact bytes they saved.
func TestStoreKillRestartResume(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "runs.journal")
	spath := filepath.Join(dir, "ck.store")

	st1 := openTestStore(t, spath)
	bigCkpt := bytes.Repeat([]byte("warm-state-"), 400) // big enough to dwarf a ref
	started := make(chan struct{})
	phase1 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		progress([]byte("superseded checkpoint"))
		progress(bigCkpt)
		close(started)
		<-ctx.Done()
		return Outcome{Status: string(StateCancelled)}, nil
	})
	s1, err := New(Config{Runner: phase1, Workers: 1, JournalPath: jpath, Checkpoints: st1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(RunSpec{Model: "bert-base", Batch: 8, Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if cs := s1.Stats().CheckpointsStored; cs != 2 {
		t.Fatalf("CheckpointsStored = %d, want 2", cs)
	}
	s1.Kill()
	st1.Close()

	// The journal must hold references, not blobs: every checkpoint record
	// decodes as a ref and is RefBytes long.
	recs, _, err := journal.ReplayFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ckRecs := 0
	for _, rec := range recs {
		if rec.Type != journal.RecCheckpointed {
			continue
		}
		ckRecs++
		if _, ok := store.DecodeRef(rec.Data); !ok {
			t.Fatalf("checkpoint record holds %d inline bytes, want a store reference", len(rec.Data))
		}
	}
	if ckRecs != 2 {
		t.Fatalf("journal has %d checkpoint records, want 2", ckRecs)
	}

	// Restart on the same journal + reopened store: the run resumes from
	// the latest checkpoint's exact bytes.
	st2 := openTestStore(t, spath)
	defer st2.Close()
	var mu sync.Mutex
	var gotResume []byte
	phase2 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		mu.Lock()
		gotResume = resume
		mu.Unlock()
		return Outcome{Status: string(StateCompleted)}, nil
	})
	s2, err := New(Config{Runner: phase2, Workers: 1, JournalPath: jpath, Checkpoints: st2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Wait(id); err != nil {
		t.Fatal(err)
	}
	drain(t, s2)
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(gotResume, bigCkpt) {
		t.Fatalf("resumed with %d bytes, want the %d-byte checkpoint", len(gotResume), len(bigCkpt))
	}
}

// TestStoreMissDegradesToColdRestart: a journal whose checkpoint reference
// no longer resolves (blob scrub-degraded, compacted away, or — here — a
// fresh store) restarts the run cold rather than failing or resuming from
// bad state.
func TestStoreMissDegradesToColdRestart(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "runs.journal")

	st1 := openTestStore(t, filepath.Join(dir, "a.store"))
	started := make(chan struct{})
	phase1 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		progress([]byte("checkpoint that will vanish"))
		close(started)
		<-ctx.Done()
		return Outcome{Status: string(StateCancelled)}, nil
	})
	s1, err := New(Config{Runner: phase1, Workers: 1, JournalPath: jpath, Checkpoints: st1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.Submit(RunSpec{Model: "bert-base", Batch: 8, Iterations: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s1.Kill()
	st1.Close()

	// Restart against a different (empty) store: the reference dangles.
	st2 := openTestStore(t, filepath.Join(dir, "b.store"))
	defer st2.Close()
	var mu sync.Mutex
	resumed := map[int64][]byte{}
	phase2 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		mu.Lock()
		resumed[spec.Seed] = resume
		mu.Unlock()
		return Outcome{Status: string(StateCompleted)}, nil
	})
	s2, err := New(Config{Runner: phase2, Workers: 1, JournalPath: jpath, Checkpoints: st2})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s2.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted {
		t.Fatalf("run state = %s, want completed", info.State)
	}
	if info.Resumed {
		t.Fatal("run claims to have resumed from a dangling reference")
	}
	if cr := s2.Stats().ColdRestarts; cr != 1 {
		t.Fatalf("ColdRestarts = %d, want 1", cr)
	}
	drain(t, s2)
	mu.Lock()
	defer mu.Unlock()
	if got := resumed[1]; got != nil {
		t.Fatalf("cold restart received %d resume bytes, want nil", len(got))
	}
}

// TestStoreDedupAcrossRuns: identical checkpoint content from different
// runs lands once in the store — the content-addressed payoff.
func TestStoreDedupAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, filepath.Join(dir, "ck.store"))
	defer st.Close()

	shared := bytes.Repeat([]byte("identical warm state "), 50)
	runner := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		progress(shared)
		return Outcome{Status: string(StateCompleted)}, nil
	})
	s, err := New(Config{Runner: runner, Workers: 2, JournalPath: filepath.Join(dir, "runs.journal"), Checkpoints: st})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		id, err := s.Submit(RunSpec{Model: "bert-base", Batch: 8, Iterations: 2, Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)
	stStats := st.Stats()
	if stStats.Keys != 1 {
		t.Fatalf("store holds %d keys for identical checkpoints, want 1", stStats.Keys)
	}
	if stStats.DedupHits != 3 {
		t.Fatalf("dedup hits = %d, want 3", stStats.DedupHits)
	}
}

// TestAdoptionPassesReferencesThrough: a handoff adoption whose resume is
// already a store reference re-journals the 16-byte reference, not a blob,
// and the adoptee resumes through the shared store.
func TestAdoptionPassesReferencesThrough(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, filepath.Join(dir, "ck.store"))
	defer st.Close()

	blob := []byte("handed-off warm state")
	key, err := st.Put(blob)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var gotResume []byte
	runner := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		mu.Lock()
		gotResume = resume
		mu.Unlock()
		return Outcome{Status: string(StateCompleted)}, nil
	})
	jpath := filepath.Join(dir, "succ.journal")
	s, err := New(Config{Runner: runner, Workers: 1, JournalPath: jpath, Checkpoints: st})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Adopt([]Adoption{{
		ID:     77,
		Spec:   RunSpec{Model: "bert-base", Batch: 8, Iterations: 2, Seed: 9},
		Resume: store.EncodeRef(key),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queued != 1 || rep.Resumed != 1 {
		t.Fatalf("adopt report: %+v", rep)
	}
	if _, err := s.Wait(77); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	mu.Lock()
	if !bytes.Equal(gotResume, blob) {
		t.Fatalf("adopted run resumed with %q, want %q", gotResume, blob)
	}
	mu.Unlock()

	recs, _, err := journal.ReplayFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Type == journal.RecCheckpointed {
			if k, ok := store.DecodeRef(rec.Data); !ok || k != key {
				t.Fatalf("re-journaled adoption checkpoint is not the reference: %d bytes", len(rec.Data))
			}
			return
		}
	}
	t.Fatal("no checkpoint record journaled for the adoption")
}

func ExampleAdoptionFolder() {
	f := NewAdoptionFolder()
	f.Add(journal.Record{Type: journal.RecSubmitted, RunID: 1, Data: []byte(`{"spec":{"model":"bert-base"},"demand":0}`)})
	f.Add(journal.Record{Type: journal.RecCheckpointed, RunID: 1, Data: []byte("old")})
	f.Add(journal.Record{Type: journal.RecCheckpointed, RunID: 1, Data: []byte("new")})
	as := f.Adoptions()
	fmt.Println(len(as), string(as[0].Resume))
	// Output: 1 new
}
