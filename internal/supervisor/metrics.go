package supervisor

import (
	"fmt"
	"time"

	"deepum/internal/arbiter"
	"deepum/internal/metrics"
	"deepum/internal/obs"
)

// Prometheus instrumentation. The registry is scraped by deepum-serve's
// /metrics endpoint; gauges sample supervisor state at scrape time, so the
// hot paths only touch atomic counters.

// runSecondsBuckets cover simulated runs from sub-millisecond unit-test
// stubs to multi-minute soak runs.
var runSecondsBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60, 300}

// queueWaitBuckets cover admission-to-pickup waits from instant dequeue to
// a backlog deep enough that any propagated deadline has long expired.
var queueWaitBuckets = []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60}

func (s *Supervisor) initMetrics() {
	const (
		subs     = "deepum_supervisor_submissions_total"
		subsHelp = "Run submissions by admission result."
	)
	// Pre-register every label combination so a scrape before the first
	// event still shows the full family at zero.
	for _, result := range []string{"accepted", "queue_full", "quota", "shutting_down", "shed", "error"} {
		s.prom.Counter(subs, subsHelp, map[string]string{"result": result})
	}
	// Admission retry-safety family: sheds, idempotency-key dedup hits, and
	// the per-class queue-wait histogram the shedder's predictions are
	// judged against. Pre-registered so the first scrape shows zeros.
	s.prom.Counter("deepum_admission_shed_total",
		"Submissions rejected because the propagated deadline cannot be met at current drain rate.", nil)
	s.prom.Counter("deepum_admission_dedup_hits_total",
		"Retried submissions resolved to an existing run by idempotency key.", nil)
	for _, class := range []string{classDeadline, classBestEffort} {
		s.prom.Histogram("deepum_admission_queue_wait_seconds",
			"Queue wait from admission to worker pickup, by deadline class.",
			map[string]string{"class": class}, queueWaitBuckets)
	}
	for _, st := range []RunState{StateQueued, StateRunning, StateSuspended,
		StateCompleted, StateCancelled, StateDeadlineExceeded, StateDegraded, StateFailed} {
		st := st
		s.prom.GaugeFunc("deepum_supervisor_runs", "Runs by current state.",
			map[string]string{"state": string(st)}, func() float64 {
				return float64(s.countState(st))
			})
	}
	for _, st := range []RunState{StateCompleted, StateCancelled,
		StateDeadlineExceeded, StateDegraded, StateFailed} {
		s.prom.Counter("deepum_supervisor_runs_finished_total",
			"Runs reaching a terminal state, by state.", map[string]string{"state": string(st)})
	}
	s.prom.GaugeFunc("deepum_supervisor_committed_bytes",
		"Simulated GPU memory pledged to admitted runs.", nil, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.committed)
		})
	s.prom.GaugeFunc("deepum_supervisor_queue_depth",
		"Admitted runs waiting for a worker.", nil, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.queued))
		})
	// Health-ladder family: the gauge samples the worst (max) ladder level
	// across currently running health-enabled runs; the counter family is
	// pre-registered per target level so the ladder shape is visible at
	// scrape time even before the first transition.
	s.prom.GaugeFunc("deepum_health_level",
		"Worst degradation-ladder level across running runs (0=L0 full prefetch, 3=L3 pure demand).",
		nil, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			worst := int64(0)
			for _, r := range s.runs {
				if r.info.State == StateRunning {
					if l := r.healthLevel.Load(); l > worst {
						worst = l
					}
				}
			}
			return float64(worst)
		})
	for _, level := range []string{"L0", "L1", "L2", "L3"} {
		s.prom.Counter("deepum_health_transitions_total",
			"Degradation-ladder transitions by target level.", map[string]string{"level": level})
	}
	// Oversubscription arbiter family: pressure and granted-bytes gauges
	// sample the arbiter at scrape time; the event counter is pre-registered
	// per action so the escalation ladder is visible at zero.
	if s.arb != nil {
		s.prom.GaugeFunc("deepum_arbiter_pressure",
			"Smoothed memory-pressure signal (0..1; granted/budget EWMA).",
			nil, func() float64 { return s.arb.Pressure() })
		s.prom.GaugeFunc("deepum_arbiter_granted_bytes",
			"Simulated GPU memory currently granted (floors plus live bursts).",
			nil, func() float64 { return float64(s.arb.Stats().Granted) })
		for _, k := range []arbiter.EventKind{arbiter.EventGrant, arbiter.EventRelease,
			arbiter.EventRevoke, arbiter.EventRestore, arbiter.EventSuspend} {
			s.prom.Counter("deepum_arbiter_events_total",
				"Arbiter grant-lifecycle events by action.",
				map[string]string{"action": k.String()})
		}
	}
	s.prom.Counter("deepum_supervisor_watchdog_cancels_total",
		"Runs cancelled by the hang-detection watchdog.", nil)
	s.prom.Counter("deepum_supervisor_worker_panics_total",
		"Runner panics recovered by the worker pool.", nil)
	s.prom.Histogram("deepum_supervisor_run_seconds",
		"Wall-clock duration of finished runs.", nil, runSecondsBuckets)
}

// countState counts runs currently in the given state.
func (s *Supervisor) countState(st RunState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.runs {
		if r.info.State == st {
			n++
		}
	}
	return n
}

// noteSubmission counts one admission decision.
func (s *Supervisor) noteSubmission(result string) {
	s.prom.Counter("deepum_supervisor_submissions_total", "", map[string]string{"result": result}).Inc()
}

// noteDedup counts one idempotency-key dedup hit.
func (s *Supervisor) noteDedup() {
	s.dedupHits.Add(1)
	s.prom.Counter("deepum_admission_dedup_hits_total", "", nil).Inc()
}

// noteFinished records a terminal transition and the run's duration.
func (s *Supervisor) noteFinished(state RunState, started *time.Time, finished time.Time) {
	s.prom.Counter("deepum_supervisor_runs_finished_total",
		"Runs reaching a terminal state, by state.", map[string]string{"state": string(state)}).Inc()
	if started != nil {
		s.prom.Histogram("deepum_supervisor_run_seconds", "", nil, runSecondsBuckets).
			Observe(finished.Sub(*started).Seconds())
	}
}

// noteHealth mirrors one in-run ladder transition into the run snapshot and
// the health metric family. It doubles as a liveness heartbeat: a run whose
// ladder is moving is making decisions, not hung.
func (s *Supervisor) noteHealth(r *run, level int) {
	if level < 0 {
		level = 0
	}
	if level > 3 {
		level = 3
	}
	r.heartbeat.Store(time.Now().UnixNano())
	r.healthLevel.Store(int64(level))
	s.prom.Counter("deepum_health_transitions_total", "",
		map[string]string{"level": fmt.Sprintf("L%d", level)}).Inc()
	s.mu.Lock()
	if !r.info.State.Terminal() {
		r.info.HealthLevel = level
	}
	s.mu.Unlock()
}

// noteArbiter mirrors one arbiter grant-lifecycle event into the metrics
// and (when configured) the obs trace. It is called from the arbiter's
// event hook, which may fire while a supervisor method holds s.mu — it
// must therefore never take s.mu itself.
func (s *Supervisor) noteArbiter(ev arbiter.Event) {
	s.prom.Counter("deepum_arbiter_events_total", "",
		map[string]string{"action": ev.Kind.String()}).Inc()
	if s.cfg.Obs != nil {
		s.cfg.Obs.Instant(obs.KindPressure, obs.TrackArbiter, time.Now().UnixNano(),
			ev.Kind.String(), int64(ev.RunID), ev.Bytes, int64(ev.Pressure*1e6))
	}
}

// Metrics exposes the supervisor's Prometheus registry for scraping
// (deepum-serve mounts it on GET /metrics).
func (s *Supervisor) Metrics() *metrics.Registry { return s.prom }
