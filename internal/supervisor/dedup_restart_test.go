package supervisor

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"deepum/internal/supervisor/journal"
)

// TestDedupAcrossKillRestart is the exactly-once regression for the crash
// window: the same idempotency key submitted before a kill -9 and retried
// against the restarted supervisor must resolve to the ONE run the first
// attempt created — whether that run was still in flight at the kill
// (replayed key table) or already terminal (terminal adoption binds the
// key too, so a late retry gets the original outcome). The journal must
// show exactly one admission per key.
func TestDedupAcrossKillRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.journal")

	// Seed 1 completes before the kill; seed 2 checkpoints then hangs until
	// killed. Completions are counted per seed — the exactly-once ledger.
	var completions sync.Map
	count := func(seed int64) {
		c, _ := completions.LoadOrStore(seed, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
	}
	hangCheckpointed := make(chan struct{})
	phase1 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		if spec.Seed == 2 {
			progress([]byte("ck-2"))
			close(hangCheckpointed)
			<-ctx.Done()
			return Outcome{Status: string(StateCancelled)}, nil
		}
		count(spec.Seed)
		return Outcome{Status: string(StateCompleted), Iterations: spec.Iterations}, nil
	})
	s1, err := New(Config{Runner: phase1, Workers: 2, QueueDepth: 8, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}

	idDone, _, err := s1.SubmitWithOptions(0, RunSpec{Model: "bert-base", Batch: 8, Seed: 1}, SubmitOptions{Key: "key-done"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Wait(idDone); err != nil {
		t.Fatal(err)
	}
	idHang, _, err := s1.SubmitWithOptions(0, RunSpec{Model: "bert-base", Batch: 8, Seed: 2}, SubmitOptions{Key: "key-hang"})
	if err != nil {
		t.Fatal(err)
	}
	<-hangCheckpointed

	// Pre-kill retries dedup in memory.
	if id, dedup, err := s1.SubmitWithOptions(0, RunSpec{Model: "bert-base", Batch: 8, Seed: 2}, SubmitOptions{Key: "key-hang"}); err != nil || !dedup || id != idHang {
		t.Fatalf("pre-kill retry: id=%d dedup=%v err=%v, want (%d, true, nil)", id, dedup, err, idHang)
	}
	s1.Kill()

	// Restart on the same journal. The retry storm does not stop for the
	// crash: the same keys arrive again before and after the interrupted
	// run finishes resuming.
	phase2 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		if spec.Seed == 2 && string(resume) != "ck-2" {
			t.Errorf("run seed 2 resumed from %q, want journaled checkpoint", resume)
		}
		count(spec.Seed)
		return Outcome{Status: string(StateCompleted), Iterations: spec.Iterations}, nil
	})
	s2, err := New(Config{Runner: phase2, Workers: 2, QueueDepth: 8, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.AdmissionKeys != 2 {
		t.Fatalf("replayed key table holds %d keys, want 2", st.AdmissionKeys)
	}

	// Retry the in-flight key: same run, no new admission.
	id, dedup, err := s2.SubmitWithOptions(0, RunSpec{Model: "bert-base", Batch: 8, Seed: 2}, SubmitOptions{Key: "key-hang"})
	if err != nil || !dedup || id != idHang {
		t.Fatalf("post-restart retry (interrupted run): id=%d dedup=%v err=%v, want (%d, true, nil)", id, dedup, err, idHang)
	}
	// Retry the terminal key: the original completed run, original outcome.
	id, dedup, err = s2.SubmitWithOptions(0, RunSpec{Model: "bert-base", Batch: 8, Seed: 1}, SubmitOptions{Key: "key-done"})
	if err != nil || !dedup || id != idDone {
		t.Fatalf("post-restart retry (terminal run): id=%d dedup=%v err=%v, want (%d, true, nil)", id, dedup, err, idDone)
	}
	info, err := s2.Get(idDone)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted {
		t.Fatalf("terminal run state after restart = %s, want completed", info.State)
	}

	if _, err := s2.Wait(idHang); err != nil {
		t.Fatal(err)
	}
	drain(t, s2)

	// Exactly-once ledger: each seed completed exactly once across both
	// supervisor lifetimes (the hang run's first attempt was cancelled, not
	// completed).
	for _, seed := range []int64{1, 2} {
		c, ok := completions.Load(seed)
		if !ok || c.(*atomic.Int64).Load() != 1 {
			n := int64(0)
			if ok {
				n = c.(*atomic.Int64).Load()
			}
			t.Fatalf("seed %d completed %d time(s) across kill-restart, want exactly 1", seed, n)
		}
	}

	// Journal audit: one admission-key record and one submitted record per
	// key, and the key never binds two run IDs.
	recs, stats, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CRCFailures > 0 || stats.TornOffset >= 0 {
		t.Fatalf("journal integrity after kill-restart: %+v", stats)
	}
	keyRuns := map[string]map[uint64]bool{}
	submitted := map[uint64]int{}
	for _, r := range recs {
		switch r.Type {
		case journal.RecAdmissionKey:
			key := string(r.Data)
			if keyRuns[key] == nil {
				keyRuns[key] = map[uint64]bool{}
			}
			keyRuns[key][r.RunID] = true
		case journal.RecSubmitted:
			submitted[r.RunID]++
		}
	}
	if len(keyRuns) != 2 {
		t.Fatalf("journal holds %d distinct admission keys, want 2", len(keyRuns))
	}
	for key, ids := range keyRuns {
		if len(ids) != 1 {
			t.Fatalf("key %q bound to %d runs in the journal, want 1", key, len(ids))
		}
	}
	for id, n := range submitted {
		if n != 1 {
			t.Fatalf("run %d journaled %d submitted records, want 1 (duplicated admission)", id, n)
		}
	}
	if len(submitted) != 2 {
		t.Fatalf("journal admitted %d runs, want 2", len(submitted))
	}
}
