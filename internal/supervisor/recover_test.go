package supervisor

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestKillRestartEquivalence is the crash-recovery acceptance test: a
// supervisor killed mid-flight (journal intact) is reopened on the same
// journal, which must replay to the same run set — finished runs stay
// finished (never re-executed), interrupted runs resume from their latest
// journaled checkpoint, queued runs start cold — and every submitted run
// reaches a terminal status with none lost and none duplicated.
func TestKillRestartEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.journal")

	// Phase 1: six runs against 2 workers.
	//   seeds 1,2: complete before the kill
	//   seeds 3,4: checkpoint twice, then hang until killed
	//   seeds 5,6: still queued at the kill
	checkpointed := map[int64]chan struct{}{3: make(chan struct{}), 4: make(chan struct{})}
	var closeOnce sync.Once // paranoia against double-start; must not trigger
	phase1 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		switch spec.Seed {
		case 1, 2:
			return Outcome{Status: string(StateCompleted), Iterations: spec.Iterations}, nil
		case 3, 4:
			progress([]byte(fmt.Sprintf("ck-%d-1", spec.Seed)))
			progress([]byte(fmt.Sprintf("ck-%d-2", spec.Seed)))
			close(checkpointed[spec.Seed])
			<-ctx.Done()
			return Outcome{Status: string(StateCancelled)}, nil
		default:
			closeOnce.Do(func() { t.Errorf("queued run %d started before the kill", spec.Seed) })
			return Outcome{Status: string(StateCompleted)}, nil
		}
	})
	s1, err := New(Config{Runner: phase1, Workers: 2, QueueDepth: 8, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int64]uint64{}
	for seed := int64(1); seed <= 2; seed++ {
		id, err := s1.Submit(RunSpec{Model: "bert-base", Batch: 8, Iterations: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids[seed] = id
		if _, err := s1.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(3); seed <= 6; seed++ {
		id, err := s1.Submit(RunSpec{Model: "bert-base", Batch: 8, Iterations: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids[seed] = id
	}
	<-checkpointed[3]
	<-checkpointed[4]
	s1.Kill()

	// Simulate the kill tearing a partially-written frame onto the tail:
	// replay must truncate it and lose nothing that was fsync'd.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: restart on the same journal. The runner records what it is
	// asked to execute and with which resume bytes.
	var mu sync.Mutex
	executed := map[int64][]byte{}
	phase2 := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		mu.Lock()
		if _, dup := executed[spec.Seed]; dup {
			t.Errorf("run seed %d executed twice after restart", spec.Seed)
		}
		executed[spec.Seed] = resume
		mu.Unlock()
		return Outcome{Status: string(StateCompleted)}, nil
	})
	s2, err := New(Config{Runner: phase2, Workers: 2, QueueDepth: 8, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Recovered != 4 {
		t.Fatalf("recovered %d runs from journal, want 4 (2 interrupted + 2 queued)", st.Recovered)
	}

	// Every submitted run reaches a terminal status.
	deadline := time.Now().Add(10 * time.Second)
	for {
		allTerminal := true
		for _, info := range s2.List() {
			if !info.State.Terminal() {
				allTerminal = false
			}
		}
		if allTerminal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runs still non-terminal after restart: %+v", s2.List())
		}
		time.Sleep(time.Millisecond)
	}
	drain(t, s2)

	// No run lost, none duplicated.
	runs := s2.List()
	if len(runs) != 6 {
		t.Fatalf("restarted supervisor sees %d runs, want 6", len(runs))
	}
	seen := map[uint64]bool{}
	for _, info := range runs {
		if seen[info.ID] {
			t.Fatalf("run %d duplicated", info.ID)
		}
		seen[info.ID] = true
	}

	// Finished runs stayed finished and were not re-executed.
	for seed := int64(1); seed <= 2; seed++ {
		info, err := s2.Get(ids[seed])
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateCompleted || info.Attempts != 1 {
			t.Fatalf("pre-kill completed run %d: state %s attempts %d", seed, info.State, info.Attempts)
		}
		mu.Lock()
		_, reran := executed[seed]
		mu.Unlock()
		if reran {
			t.Fatalf("completed run %d was re-executed after restart", seed)
		}
	}
	// Interrupted runs resumed from their LATEST checkpoint.
	for seed := int64(3); seed <= 4; seed++ {
		info, err := s2.Get(ids[seed])
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateCompleted || !info.Resumed || info.Attempts != 2 {
			t.Fatalf("interrupted run %d: state %s resumed %v attempts %d", seed, info.State, info.Resumed, info.Attempts)
		}
		mu.Lock()
		resume := executed[seed]
		mu.Unlock()
		if want := fmt.Sprintf("ck-%d-2", seed); string(resume) != want {
			t.Fatalf("run %d resumed from %q, want latest checkpoint %q", seed, resume, want)
		}
	}
	// Queued runs started cold.
	for seed := int64(5); seed <= 6; seed++ {
		info, err := s2.Get(ids[seed])
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateCompleted || info.Resumed || info.Attempts != 1 {
			t.Fatalf("queued run %d: state %s resumed %v attempts %d", seed, info.State, info.Resumed, info.Attempts)
		}
		mu.Lock()
		resume, ran := executed[seed]
		mu.Unlock()
		if !ran || resume != nil {
			t.Fatalf("queued run %d: ran %v resume %q, want cold start", seed, ran, resume)
		}
	}
}

// TestRestartIdempotent: replaying a journal whose runs all finished
// re-admits nothing and re-executes nothing.
func TestRestartIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.journal")
	s1, err := New(Config{Runner: instantRunner(), Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id, err := s1.Submit(RunSpec{Model: "bert-base", Batch: 8, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s1)

	booby := RunnerFunc(func(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (Outcome, error) {
		if spec.Model != "new" {
			t.Errorf("fully-finished journal re-executed run seed %d", spec.Seed)
		}
		return Outcome{Status: string(StateCompleted)}, nil
	})
	s2, err := New(Config{Runner: booby, Workers: 2, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Recovered != 0 || st.Terminal != 5 {
		t.Fatalf("stats after clean restart = %+v", st)
	}
	// New submissions continue the ID sequence past the replayed ones and
	// do execute.
	id, err := s2.Submit(RunSpec{Model: "new", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if id != 6 {
		t.Fatalf("post-restart ID = %d, want 6", id)
	}
	info, err := s2.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCompleted {
		t.Fatalf("post-restart run state = %s", info.State)
	}
	drain(t, s2)
}
