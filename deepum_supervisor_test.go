package deepum

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"deepum/internal/supervisor/journal"
)

// fastSpec is a spec small enough that a real TrainContext run finishes in
// well under a second.
func fastSpec(seed int64) RunSpec {
	return RunSpec{
		Model:      "bert-base",
		Batch:      4,
		Scale:      128,
		Iterations: 2,
		Warmup:     2,
		Seed:       seed,
	}
}

func drainSupervisor(t *testing.T, s *Supervisor) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestNewSupervisorRunsTrain(t *testing.T) {
	s, err := NewSupervisor(SupervisorConfig{Workers: 2, GPUMemoryBudget: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer drainSupervisor(t, s)

	id, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != RunCompleted {
		t.Fatalf("state = %s (reason %q), want %s", info.State, info.Reason, RunCompleted)
	}
	if info.Outcome == nil || info.Outcome.Iterations != 2 {
		t.Fatalf("outcome = %+v, want 2 measured iterations", info.Outcome)
	}
	if info.Outcome.IterationTime <= 0 || info.Outcome.FaultsPerIteration < 0 {
		t.Fatalf("implausible outcome measurements: %+v", info.Outcome)
	}
	// The default estimator charged the workload's real footprint.
	if info.Demand <= 0 {
		t.Fatalf("demand = %d, want the estimated workload footprint", info.Demand)
	}
}

func TestNewSupervisorChunkedCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.journal")
	s, err := NewSupervisor(SupervisorConfig{Workers: 1, JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}

	spec := fastSpec(7)
	spec.Iterations = 4
	spec.CheckpointEvery = 2 // two chunks -> at least one real mid-run checkpoint
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != RunCompleted {
		t.Fatalf("state = %s (reason %q)", info.State, info.Reason)
	}
	if info.Outcome.Iterations != 4 {
		t.Fatalf("chunked run measured %d iterations, want 4", info.Outcome.Iterations)
	}
	if info.Checkpoints < 2 {
		t.Fatalf("chunked run journaled %d checkpoints, want >= 2 (one per chunk)", info.Checkpoints)
	}
	drainSupervisor(t, s)

	// The checkpoints really hit the journal as decodable warm state.
	recs, stats, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornOffset != -1 {
		t.Fatalf("journal torn at %d after clean drain", stats.TornOffset)
	}
	warm := 0
	for _, r := range recs {
		if r.Type == journal.RecCheckpointed && len(r.Data) > 0 {
			if _, err := LoadCheckpoint(bytes.NewReader(r.Data)); err != nil {
				t.Fatalf("journaled checkpoint does not decode: %v", err)
			}
			warm++
		}
	}
	if warm < 2 {
		t.Fatalf("journal holds %d decodable warm checkpoints, want >= 2", warm)
	}
}

func TestEstimateMemoryDemand(t *testing.T) {
	n, err := EstimateMemoryDemand(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("EstimateMemoryDemand = %d, want > 0", n)
	}
	if _, err := EstimateMemoryDemand(RunSpec{Model: "no-such-model", Batch: 4}); err == nil {
		t.Fatal("EstimateMemoryDemand accepted an unknown model")
	}
}

func TestTrainRunnerRejectsForeignResume(t *testing.T) {
	spec := fastSpec(1)
	spec.System = string(SystemVDNN)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := TrainRunner().Run(ctx, spec, []byte("not-a-checkpoint"), func([]byte) {})
	if err == nil {
		t.Fatal("TrainRunner resumed a non-deepum system from a checkpoint")
	}
}
