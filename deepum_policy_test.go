package deepum

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPoliciesListing pins the discovery surface: at least the three
// shipped policies, sorted, with non-empty summaries, and PolicyKnown
// agreeing with the listing.
func TestPoliciesListing(t *testing.T) {
	infos := Policies()
	if len(infos) < 3 {
		t.Fatalf("want >= 3 registered policies, have %d", len(infos))
	}
	for i, p := range infos {
		if p.Name == "" || p.Summary == "" {
			t.Errorf("policy %d has empty name or summary: %+v", i, p)
		}
		if i > 0 && infos[i-1].Name >= p.Name {
			t.Errorf("Policies() not sorted: %q before %q", infos[i-1].Name, p.Name)
		}
		if !PolicyKnown(p.Name) {
			t.Errorf("listed policy %q not PolicyKnown", p.Name)
		}
	}
	if !PolicyKnown("") {
		t.Error("empty policy name (the default) must be known")
	}
	if PolicyKnown("no-such-policy") {
		t.Error("unregistered name reported known")
	}
}

// TestTrainUnknownPolicyTyped pins the typed rejection through the facade.
func TestTrainUnknownPolicyTyped(t *testing.T) {
	cfg := testConfig(SystemDeepUM)
	cfg.Policy = "no-such-policy"
	_, err := Train(Workload{Model: "bert-base", Batch: 32}, cfg)
	var ue *UnknownPolicyError
	if !errors.As(err, &ue) || ue.Name != "no-such-policy" {
		t.Fatalf("want *UnknownPolicyError, got %v", err)
	}
}

// TestTrainPolicyRejectedForNonDeepUM: only the DeepUM driver runs a
// prefetch policy; naming one on any other system is a typed error.
func TestTrainPolicyRejectedForNonDeepUM(t *testing.T) {
	cfg := testConfig(SystemLMS)
	cfg.Policy = "correlation"
	_, err := Train(Workload{Model: "bert-base", Batch: 32}, cfg)
	var pe *PolicyUnsupportedError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PolicyUnsupportedError, got %v", err)
	}
	if !strings.Contains(pe.Error(), "lms") || !strings.Contains(pe.Error(), "correlation") {
		t.Fatalf("error does not name system and policy: %v", pe)
	}
}

// TestTrainPolicyCheckpointCycle is the generic resume path for a
// NON-correlation policy: train under "learned", capture the warm state
// with PolicyCheckpointOf, round-trip it through Save/LoadPolicyCheckpoint
// bytes, and resume — the resumed run must identify its policy and accept
// the state. A mismatched Config.Policy must be rejected.
func TestTrainPolicyCheckpointCycle(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	cfg := testConfig(SystemDeepUM)
	cfg.Policy = "learned"
	first, err := Train(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Policy != "learned" {
		t.Fatalf("Result.Policy = %q, want learned", first.Policy)
	}
	if first.Warm != nil {
		t.Fatal("non-correlation run exposed typed correlation tables")
	}
	st := PolicyCheckpointOf(first)
	if st == nil || st.Policy != "learned" {
		t.Fatalf("PolicyCheckpointOf = %+v, want learned state", st)
	}

	var buf bytes.Buffer
	if err := SavePolicyCheckpoint(&buf, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicyCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Policy != "learned" || !bytes.Equal(loaded.Payload, st.Payload) {
		t.Fatalf("policy checkpoint round trip drifted: %q, %d vs %d bytes",
			loaded.Policy, len(loaded.Payload), len(st.Payload))
	}

	resume := testConfig(SystemDeepUM)
	resume.Policy = "learned"
	resume.ResumeState = loaded
	resume.Warmup = 1
	resumed, err := Train(w, resume)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Status != StatusCompleted || resumed.Policy != "learned" {
		t.Fatalf("resumed run: status %v policy %q", resumed.Status, resumed.Policy)
	}

	mismatch := testConfig(SystemDeepUM)
	mismatch.Policy = "gpuvm-window"
	mismatch.ResumeState = loaded
	if _, err := Train(w, mismatch); err == nil {
		t.Fatal("ResumeState for learned accepted under Config.Policy gpuvm-window")
	}
}

// TestTrainResumeFromLegacyBlob resumes a run from the committed
// pre-policy v1 checkpoint through BOTH public load paths: the typed
// correlation path (LoadCheckpoint -> Config.Resume) and the generic
// policy path (LoadPolicyCheckpoint -> Config.ResumeState). Old blobs
// written before this API existed must keep working, unmodified.
func TestTrainResumeFromLegacyBlob(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("internal", "correlation", "testdata", "legacy_v1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Model: "bert-base", Batch: 32}

	warm, err := LoadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadCheckpoint on v1 blob: %v", err)
	}
	typed := testConfig(SystemDeepUM)
	typed.Resume = warm
	typed.Warmup = 1
	res, err := Train(w, typed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCompleted || res.Policy != "correlation" {
		t.Fatalf("typed legacy resume: status %v policy %q", res.Status, res.Policy)
	}

	st, err := LoadPolicyCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadPolicyCheckpoint on v1 blob: %v", err)
	}
	if st.Policy != "correlation" {
		t.Fatalf("v1 blob decoded as policy %q", st.Policy)
	}
	generic := testConfig(SystemDeepUM)
	generic.ResumeState = st
	generic.Warmup = 1
	res2, err := Train(w, generic)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != StatusCompleted || res2.Policy != "correlation" {
		t.Fatalf("generic legacy resume: status %v policy %q", res2.Status, res2.Policy)
	}
}

// TestPolicyCheckpointOfCorrelation: the bridge re-encodes typed
// correlation warm state into the generic PolicyState, and the encoding
// round-trips through the envelope.
func TestPolicyCheckpointOfCorrelation(t *testing.T) {
	first, err := Train(Workload{Model: "bert-large", Batch: 16}, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm == nil {
		t.Fatal("correlation run exposed no typed warm state")
	}
	st := PolicyCheckpointOf(first)
	if st == nil || st.Policy != "correlation" || len(st.Payload) == 0 {
		t.Fatalf("PolicyCheckpointOf = %+v", st)
	}
	var generic, typed bytes.Buffer
	if err := SavePolicyCheckpoint(&generic, st); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(&typed, first.Warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(generic.Bytes(), typed.Bytes()) {
		t.Fatal("generic and typed save paths produced different bytes for the same correlation state")
	}
}
