package deepum

import (
	"errors"
	"testing"

	"deepum/internal/baselines"
)

// testConfig keeps public-API tests fast: scale 64, 3 iterations.
func testConfig(sys System) Config {
	cfg := DefaultConfig()
	cfg.System = sys
	cfg.Scale = 64
	cfg.Iterations = 3
	cfg.Warmup = 3
	return cfg
}

func TestTrainDeepUMFasterThanUM(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	um, err := Train(w, testConfig(SystemUM))
	if err != nil {
		t.Fatal(err)
	}
	du, err := Train(w, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	if du.IterationTime >= um.IterationTime {
		t.Fatalf("DeepUM %v not faster than UM %v", du.IterationTime, um.IterationTime)
	}
	if du.PageFaultsPerIteration >= um.PageFaultsPerIteration {
		t.Fatalf("DeepUM faults %d not below UM %d",
			du.PageFaultsPerIteration, um.PageFaultsPerIteration)
	}
	if du.CorrelationTableBytes == 0 || du.PrefetchUseful == 0 {
		t.Fatalf("missing driver metrics: %+v", du)
	}
	if du.EnergyJoules <= 0 || du.TrafficH2D <= 0 {
		t.Fatalf("missing traffic/energy: %+v", du)
	}
}

func TestTrainAllSystemsOnCNN(t *testing.T) {
	w := Workload{Model: "mobilenet", Dataset: "cifar100", Batch: 600}
	for _, sys := range Systems() {
		res, err := Train(w, testConfig(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.IterationTime <= 0 {
			t.Fatalf("%s: no time", sys)
		}
		if res.System != sys {
			t.Fatalf("system mislabeled: %v", res)
		}
	}
}

func TestTrainVDNNRejectsTransformer(t *testing.T) {
	_, err := Train(Workload{Model: "bert-base", Batch: 8}, testConfig(SystemVDNN))
	if !errors.Is(err, baselines.ErrUnsupportedModel) {
		t.Fatalf("err = %v, want ErrUnsupportedModel", err)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(Workload{Model: "alexnet", Batch: 8}, DefaultConfig()); err == nil {
		t.Fatal("unknown model must error")
	}
	cfg := DefaultConfig()
	cfg.System = "nonsense"
	if _, err := Train(Workload{Model: "bert-base", Batch: 8}, cfg); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestTrainZeroConfigDefaults(t *testing.T) {
	// A zero-value Config must be usable: defaults fill in.
	res, err := Train(Workload{Model: "bert-base", Batch: 4}, Config{Scale: 128, Iterations: 2, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != SystemDeepUM {
		t.Fatalf("default system = %v", res.System)
	}
}

func TestModelsAndSystems(t *testing.T) {
	if len(Models()) != 9 {
		t.Fatalf("models = %d, want the paper's 9", len(Models()))
	}
	if len(Systems()) != 10 {
		t.Fatalf("systems = %d, want 10", len(Systems()))
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 11 {
		t.Fatalf("experiments = %d, want 11", len(exps))
	}
	for _, id := range []string{"fig9a", "fig9b", "fig9c", "table3", "table4",
		"table5", "fig10", "fig11", "fig12", "table7", "fig13"} {
		if exps[id] == "" {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if _, err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	tbl, err := RunExperiment("table4", ExperimentOptions{Scale: 64, Iterations: 2, Warmup: 3, Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 || tbl.ID != "table4" {
		t.Fatalf("table = %+v", tbl)
	}
	if tbl.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestMachinePresets(t *testing.T) {
	if V100_32GB().GPUMemory != 32<<30 || V100_16GB().GPUMemory != 16<<30 {
		t.Fatal("machine presets wrong")
	}
}

func TestBuildProgram(t *testing.T) {
	p, err := BuildProgram(Workload{Model: "dcgan", Dataset: "celeba", Batch: 256}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernels() == 0 || p.FootprintBytes() == 0 {
		t.Fatalf("empty program: %+v", p)
	}
}
