package deepum

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"deepum/internal/baselines"
)

// testConfig keeps public-API tests fast: scale 64, 3 iterations.
func testConfig(sys System) Config {
	cfg := DefaultConfig()
	cfg.System = sys
	cfg.Scale = 64
	cfg.Iterations = 3
	cfg.Warmup = 3
	return cfg
}

func TestTrainDeepUMFasterThanUM(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	um, err := Train(w, testConfig(SystemUM))
	if err != nil {
		t.Fatal(err)
	}
	du, err := Train(w, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	if du.IterationTime >= um.IterationTime {
		t.Fatalf("DeepUM %v not faster than UM %v", du.IterationTime, um.IterationTime)
	}
	if du.PageFaultsPerIteration >= um.PageFaultsPerIteration {
		t.Fatalf("DeepUM faults %d not below UM %d",
			du.PageFaultsPerIteration, um.PageFaultsPerIteration)
	}
	if du.CorrelationTableBytes == 0 || du.PrefetchUseful == 0 {
		t.Fatalf("missing driver metrics: %+v", du)
	}
	if du.EnergyJoules <= 0 || du.TrafficH2D <= 0 {
		t.Fatalf("missing traffic/energy: %+v", du)
	}
}

func TestTrainAllSystemsOnCNN(t *testing.T) {
	w := Workload{Model: "mobilenet", Dataset: "cifar100", Batch: 600}
	for _, sys := range Systems() {
		res, err := Train(w, testConfig(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.IterationTime <= 0 {
			t.Fatalf("%s: no time", sys)
		}
		if res.System != sys {
			t.Fatalf("system mislabeled: %v", res)
		}
	}
}

func TestTrainVDNNRejectsTransformer(t *testing.T) {
	_, err := Train(Workload{Model: "bert-base", Batch: 8}, testConfig(SystemVDNN))
	if !errors.Is(err, baselines.ErrUnsupportedModel) {
		t.Fatalf("err = %v, want ErrUnsupportedModel", err)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(Workload{Model: "alexnet", Batch: 8}, DefaultConfig()); err == nil {
		t.Fatal("unknown model must error")
	}
	cfg := DefaultConfig()
	cfg.System = "nonsense"
	if _, err := Train(Workload{Model: "bert-base", Batch: 8}, cfg); err == nil {
		t.Fatal("unknown system must error")
	}
	for _, batch := range []int64{0, -4} {
		if _, err := Train(Workload{Model: "bert-base", Batch: batch}, DefaultConfig()); err == nil {
			t.Fatalf("batch %d must error", batch)
		} else if !strings.Contains(err.Error(), "batch") {
			t.Fatalf("batch error not descriptive: %v", err)
		}
	}
	deg := DefaultConfig()
	deg.Driver.Degree = -1
	if _, err := Train(Workload{Model: "bert-base", Batch: 8}, deg); err == nil {
		t.Fatal("negative prefetch degree must error")
	} else if !strings.Contains(err.Error(), "degree") {
		t.Fatalf("degree error not descriptive: %v", err)
	}
	tiny := DefaultConfig()
	tiny.Machine.GPUMemory = 1 << 20 // below one 2 MiB UM block before scaling
	if _, err := Train(Workload{Model: "bert-base", Batch: 8}, tiny); err == nil {
		t.Fatal("GPU memory below one UM block must error")
	} else if !strings.Contains(err.Error(), "UM block") {
		t.Fatalf("GPU-memory error not descriptive: %v", err)
	}
}

func TestTrainChaosWiring(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	cfg := testConfig(SystemDeepUM)
	cfg.Chaos = "flaky-link"
	res, err := Train(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChaosStats.TransferFailures == 0 {
		t.Fatalf("chaos scenario ran but injected nothing: %+v", res.ChaosStats)
	}
	clean, err := Train(w, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	if clean.ChaosStats != (ChaosStats{}) {
		t.Fatalf("clean run reports chaos stats: %+v", clean.ChaosStats)
	}
	bad := testConfig(SystemDeepUM)
	bad.Chaos = "no-such-scenario"
	if _, err := Train(w, bad); err == nil {
		t.Fatal("unknown chaos scenario must error")
	}
	baseline := testConfig(SystemLMS)
	baseline.Chaos = "flaky-link"
	if _, err := Train(w, baseline); err == nil {
		t.Fatal("chaos on a tensor-level baseline must error")
	}
	if len(ChaosScenarios()) < 7 {
		t.Fatalf("scenarios = %v", ChaosScenarios())
	}
}

func TestTrainZeroConfigDefaults(t *testing.T) {
	// A zero-value Config must be usable: defaults fill in.
	res, err := Train(Workload{Model: "bert-base", Batch: 4}, Config{Scale: 128, Iterations: 2, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != SystemDeepUM {
		t.Fatalf("default system = %v", res.System)
	}
}

func TestModelsAndSystems(t *testing.T) {
	if len(Models()) != 9 {
		t.Fatalf("models = %d, want the paper's 9", len(Models()))
	}
	if len(Systems()) != 10 {
		t.Fatalf("systems = %d, want 10", len(Systems()))
	}
	// The discovery functions guarantee deterministic ascending order.
	if !sort.StringsAreSorted(Models()) {
		t.Fatalf("Models() not sorted: %v", Models())
	}
	systems := Systems()
	if !sort.SliceIsSorted(systems, func(i, j int) bool { return systems[i] < systems[j] }) {
		t.Fatalf("Systems() not sorted: %v", systems)
	}
	scs := ChaosScenarios()
	if !sort.SliceIsSorted(scs, func(i, j int) bool { return scs[i].Name < scs[j].Name }) {
		t.Fatalf("ChaosScenarios() not sorted: %v", scs)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 11 {
		t.Fatalf("experiments = %d, want 11", len(exps))
	}
	if !sort.SliceIsSorted(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID }) {
		t.Fatalf("Experiments() not sorted by ID: %v", exps)
	}
	byID := map[string]string{}
	for _, e := range exps {
		byID[e.ID] = e.Title
	}
	for _, id := range []string{"fig9a", "fig9b", "fig9c", "table3", "table4",
		"table5", "fig10", "fig11", "fig12", "table7", "fig13"} {
		if byID[id] == "" {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if _, err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	tbl, err := RunExperiment("table4", ExperimentOptions{Scale: 64, Iterations: 2, Warmup: 3, Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 || tbl.ID != "table4" {
		t.Fatalf("table = %+v", tbl)
	}
	if tbl.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestMachinePresets(t *testing.T) {
	if V100_32GB().GPUMemory != 32<<30 || V100_16GB().GPUMemory != 16<<30 {
		t.Fatal("machine presets wrong")
	}
}

func TestBuildProgram(t *testing.T) {
	p, err := BuildProgram(Workload{Model: "dcgan", Dataset: "celeba", Batch: 256}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernels() == 0 || p.FootprintBytes() == 0 {
		t.Fatalf("empty program: %+v", p)
	}
}
