package deepum

import (
	"testing"

	"deepum/internal/sim"
	"deepum/internal/um"
)

// HandleGroupsPerf is one measured sample of the fault-handler hot path:
// the demand-migration cycle (evict-free Remove + HandleGroups of one
// populated block) that every simulated page fault rides through. The
// numbers are host wall-clock costs of the simulator itself — the
// ROADMAP's perf trajectory tracks them across PRs so a regression in the
// handler shows up in BENCH_N.json, not just in slower CI.
type HandleGroupsPerf struct {
	// NsPerOp is wall nanoseconds per Remove+HandleGroups cycle.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per cycle; the handler's
	// nil-observer contract pins this to zero.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Iterations is how many cycles testing.Benchmark settled on.
	Iterations int `json:"iterations"`
}

// MeasureHandleGroups benchmarks the untraced fault-handler demand path
// with testing.Benchmark and returns its cost. It mirrors the in-package
// BenchmarkHandleGroups (internal/um) so tooling outside the test binary —
// deepum-bench -json — can emit the same figure.
func MeasureHandleGroups() HandleGroupsPerf {
	r := testing.Benchmark(func(b *testing.B) {
		p := sim.DefaultParams()
		p.GPUMemory = 10 * sim.BlockSize
		s := um.NewSpace(0)
		h := &um.Handler{
			Params:      p,
			Space:       s,
			Res:         um.NewResidency(s, p.GPUMemory),
			Link:        sim.NewDuplex(p, nil),
			Policy:      um.LRMPolicy{},
			Invalidator: um.NoInvalidate{},
		}
		a, err := s.Malloc(sim.BlockSize)
		if err != nil {
			b.Fatal(err)
		}
		blk := um.BlockOf(a)
		s.Block(blk).HostPopulated = true
		groups := []um.FaultGroup{{Block: blk, Count: sim.PagesPerBlock}}
		now := h.HandleGroups(0, groups)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Res.Remove(blk)
			now = h.HandleGroups(now, groups)
		}
		_ = now
	})
	return HandleGroupsPerf{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}
