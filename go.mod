module deepum

go 1.22
