module deepum

go 1.23
